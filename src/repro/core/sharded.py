"""Sharded streaming clustering: one engine per application prefix.

Ocasta runs on end-user machines that host many applications at once, and
clusters *per application* — the repair tool always restricts the trace to
one ``key_prefix``.  A single global session therefore does redundant
work: every update re-scans state belonging to applications that did not
write anything.  The sharded architecture splits the stream instead:

- a :class:`~repro.ttkv.sharding.ShardedJournal` routes the store's
  append-ordered journal into one per-prefix journal (longest prefix
  wins; unmatched keys go to a catch-all shard, or are dropped when the
  deployment is filtered);
- each shard is owned by a :class:`ShardEngine` — the per-stream logic of
  the original incremental pipeline: a journal cursor, a streaming write
  group extractor, an in-place :class:`~repro.core.correlation.
  CorrelationMatrix`, and a per-component cluster cache.  Components are
  tracked by the matrix's incremental union-find, so an update touches
  only the *dirty region*: the components containing keys of the write
  groups that actually changed;
- the :class:`ShardedPipeline` updates only shards whose journals
  advanced, and merges the per-shard cluster sets and
  :class:`UpdateStats` into the session-level view.

Each shard's clusters are exactly what the batch
:func:`~repro.core.pipeline.cluster_settings` produces with
``key_filter=prefix`` — filter-then-extract, so a write group never spans
applications.  The unsharded :class:`~repro.core.incremental.
IncrementalPipeline` is the degenerate case of one catch-all shard.

Example — two applications, updated and checkpointed::

    >>> import json
    >>> from repro.ttkv.store import TTKV
    >>> from repro.core.sharded import ShardedPipeline
    >>> store = TTKV()
    >>> pipeline = ShardedPipeline(store, shard_prefixes=("mail/", "editor/"))
    >>> store.record_write("mail/signature", "plain", 10.0)
    >>> store.record_write("mail/font", "mono", 10.0)
    >>> store.record_write("editor/theme", "dark", 10.5)
    >>> [c.sorted_keys() for c in pipeline.update()]
    [['mail/font', 'mail/signature'], ['editor/theme']]
    >>> store.record_write("editor/theme", "light", 700.0)
    >>> clusters = pipeline.update()          # only the editor shard moved
    >>> pipeline.last_stats.shards_updated, pipeline.last_stats.shards_total
    (1, 3)

    A session checkpoints to a JSON-safe dict and resumes without
    re-reading a single consumed event:

    >>> blob = json.dumps(pipeline.to_state())
    >>> resumed = ShardedPipeline.from_state(store, json.loads(blob))
    >>> [c.sorted_keys() for c in resumed.update()] == \\
    ...     [c.sorted_keys() for c in clusters]
    True
    >>> resumed.last_stats.events_consumed
    0
"""

from __future__ import annotations

import time
import uuid
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.core.clustering import LINKAGE_COMPLETE, _LINKAGES
from repro.core.cluster_model import ClusterSet
from repro.core.correlation import (
    CorrelationMatrix,
    CorrelationMatrixView,
    correlation_to_distance,
)
from repro.core.dendro_repair import (
    REPAIR_SPLICE,
    SeedDistanceCache,
    SpliceOutcome,
    check_repair_mode,
    dendrogram_from_state,
    dendrogram_to_state,
    rebuild_outcome,
    splice_dendrogram,
)
from repro.core.dendrogram import Dendrogram
from repro.core.hac_kernel import KERNEL_AUTO, KERNEL_NUMPY, check_kernel
from repro.core.ordering import SortedKeySets, diff_sorted
from repro.core.pipeline import DEFAULT_CORRELATION_THRESHOLD, DEFAULT_WINDOW
from repro.core.windowing import GROUPING_SLIDING, StreamingGroupExtractor
from repro.exceptions import CheckpointError, CorruptCheckpointError
from repro.ttkv.columnar import BACKEND_AUTO, journal_backend, resolve_backend
from repro.ttkv.journal import (
    EventJournal,
    JournalCursor,
    decode_event,
    encode_event,
    encode_event_batch,
)
from repro.ttkv.sharding import ShardedJournal
from repro.ttkv.store import TTKV

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.executors import ShardExecutor

#: Checkpoint format version written by :meth:`ShardedPipeline.to_state`.
#: Version 2 added matrix compaction: shard states carry a ``"compacted"``
#: aggregate baseline and their ``"groups"`` list holds only the
#: retractable tail.  Version 3 added the columnar journal backbone: the
#: session params record ``"journal_backend"``.  Version-1 and version-2
#: checkpoints still load (missing backend defaults to ``"auto"``;
#: version-1 group histories are compacted on the first update).
STATE_VERSION = 3

#: Checkpoint versions :meth:`ShardedPipeline.from_state` accepts.
SUPPORTED_STATE_VERSIONS = (1, 2, 3)

#: Minimum closed groups per update before :meth:`ShardEngine.
#: _register_stream` takes the matrix's bulk-ingest path; the routine
#: one-group-closed update stays on the single ``update_groups`` call.
STREAM_BATCH_MIN = 4


@dataclass(frozen=True)
class UpdateStats:
    """What one pipeline ``update()`` call actually did.

    For a :class:`ShardedPipeline` the counters aggregate over the shards
    that were updated; ``shards_updated`` / ``shards_total`` say how many
    engines ran versus were skipped because their journals had not
    advanced.  ``reorders_absorbed`` counts already-consumed events that
    were re-delivered after an out-of-order append and absorbed in place
    (rewound within the provisional trailing group) instead of forcing the
    full rebuild that ``rebuilt`` reports.

    ``shard_timings`` maps each updated shard id to the wall-clock seconds
    its engine spent *computing* — journal materialisation, checkpoint
    restore and re-export on a process-pool worker are excluded, so the
    timings are comparable across executors; that excluded serialization
    cost is aggregated in ``handoff_seconds`` (0.0 for the in-process
    executors).  ``slowest_shard`` is the id with the largest timing
    (``None`` when nothing ran).
    ``parallel_speedup`` is the overlap factor of the update: total
    per-shard busy seconds divided by the wall time of the whole shard
    pass.  With the serial executor it is at most 1.0; a parallel executor
    pushes it towards the number of shards that actually overlapped.  It
    is *not* a throughput claim — on a GIL-bound interpreter threads can
    overlap without finishing sooner; compare ``serial`` vs ``thread``
    wall clocks (``benchmarks/bench_parallel.py``) for that.

    ``merges_reused`` / ``merges_recomputed`` account for the spliced
    dendrogram repair (:mod:`repro.core.dendro_repair`): of all the
    agglomeration merges backing this update's reclustered components,
    how many were kept verbatim from cached dendrograms versus re-derived
    by agglomeration.  Under ``repair_mode="rebuild"`` every merge of a
    dirty component is recomputed, so ``merges_reused`` stays 0.

    ``kernel_components`` counts the reclustered components whose merges
    were derived by the numpy HAC kernel (:mod:`repro.core.hac_kernel`)
    rather than the pure-Python reference path; ``kernel_used`` flags
    whether the kernel ran at all in this update.  Both reflect the
    per-component ``kernel="auto"`` dispatch — small components stay on
    the Python path even when numpy is installed.
    """

    events_consumed: int
    groups_closed: int
    dirty_keys: int
    components_total: int
    components_reclustered: int
    components_reused: int
    rebuilt: bool
    reorders_absorbed: int = 0
    shards_updated: int = 0
    shards_total: int = 1
    shard_timings: dict[str, float] = field(default_factory=dict)
    slowest_shard: str | None = None
    parallel_speedup: float = 1.0
    handoff_seconds: float = 0.0
    merges_reused: int = 0
    merges_recomputed: int = 0
    kernel_used: bool = False
    kernel_components: int = 0


@dataclass(frozen=True)
class ShardUpdate:
    """Result of one :meth:`ShardEngine.update`: stats plus a change flag.

    ``seconds`` is the wall-clock cost of the engine's own ``update()`` —
    pure shard compute, whichever executor produced it.
    ``handoff_seconds`` is everything a process-pool round adds on top:
    journal materialisation, checkpoint restore and re-export in the
    worker plus the parent-side adoption.  In-process executors report
    0.0, so ``seconds`` (and the ``shard_timings`` built from it) stay
    comparable across executors.
    """

    stats: UpdateStats
    changed: bool
    seconds: float = 0.0
    handoff_seconds: float = 0.0


class ShardEngine:
    """Streaming clustering over one shard's journal.

    This is the per-stream half of the original incremental pipeline,
    extracted so a sharded session can own many of them.  The engine holds
    a cursor into its :class:`~repro.ttkv.journal.EventJournal`, closes
    write groups as the stream advances, folds them into its correlation
    matrix in place, and re-agglomerates only the connected components the
    update dirtied — components come from the matrix's union-find, so the
    scan is O(dirty region), not O(live keys).

    An out-of-order append that lands inside the still-open trailing write
    group is absorbed by rewinding the extractor and re-feeding the
    re-sorted tail (an O(buffer) fixup); anything older forces the rebuild
    the journal's epoch machinery always allowed.

    Each reclustered component's full dendrogram is cached alongside its
    flat clusters, and ``repair_mode="splice"`` (the default) repairs a
    dirty component by keeping the cached merge prefix below the first
    affected linkage distance and re-agglomerating only the surviving
    sub-clusters (:mod:`repro.core.dendro_repair`); ``"rebuild"`` always
    re-agglomerates from singletons.  Both modes produce identical
    clusters — the cache only changes how much work an update does, and
    it survives checkpoints (:meth:`to_state`) and the process-executor
    hand-off (:meth:`export_task`).
    """

    def __init__(
        self,
        journal: EventJournal,
        *,
        window: float = DEFAULT_WINDOW,
        correlation_threshold: float = DEFAULT_CORRELATION_THRESHOLD,
        linkage: str = LINKAGE_COMPLETE,
        grouping: str = GROUPING_SLIDING,
        repair_mode: str = REPAIR_SPLICE,
        kernel: str = KERNEL_AUTO,
    ) -> None:
        if linkage not in _LINKAGES:
            raise ValueError(f"unknown linkage {linkage!r}; options: {_LINKAGES}")
        self._journal = journal
        self._window = window
        self._correlation_threshold = correlation_threshold
        self._max_distance = correlation_to_distance(correlation_threshold)
        self._linkage = linkage
        self._grouping = grouping
        self._repair_mode = check_repair_mode(repair_mode)
        self._kernel = check_kernel(kernel)
        # Identity tag for worker-affinity caching: a process executor
        # remembers which engine a sticky worker holds by this key (an
        # ``id()`` could be reused after garbage collection; a uuid not).
        self._affinity_key = uuid.uuid4().hex
        self._state_epoch = 0
        self._reset_state()

    def _reset_state(self) -> None:
        # Any reset invalidates engine copies cached by out-of-process
        # workers: bump the epoch so their slice fast path stops matching.
        self._state_epoch += 1
        # window and grouping are validated by the extractor
        self._extractor = StreamingGroupExtractor(
            self._window, grouping=self._grouping
        )
        self._cursor: JournalCursor | None = None
        self._matrix = CorrelationMatrix()
        self._closed_count = 0
        self._pending_keys: frozenset[str] = frozenset()
        self._component_cache: dict[frozenset[str], list[frozenset[str]]] = {}
        self._dendro_cache: dict[frozenset[str], Dendrogram] = {}
        self._seed_cache: dict[frozenset[str], SeedDistanceCache] = {}
        self._component_of_key: dict[str, frozenset[str]] = {}
        self._seen_structure = self._matrix.structure_version
        self._ready = False
        self._order = SortedKeySets()
        self._last_removed: list[frozenset[str]] = []
        self._last_added: list[frozenset[str]] = []
        self._cluster_set: ClusterSet | None = None

    # -- inspection ----------------------------------------------------------

    @property
    def journal(self) -> EventJournal:
        return self._journal

    @property
    def affinity_key(self) -> str:
        """Stable identity tag for worker-side engine caching."""
        return self._affinity_key

    @property
    def state_epoch(self) -> int:
        """Counter of state mutations; tags :meth:`export_task` payloads.

        A sticky process-pool worker caches the engine it restored under
        ``(affinity_key, state_epoch, cursor position)``; any mutation the
        worker did not itself produce — an update, a restore, a rebuild, a
        retune — bumps the epoch, so the worker's cached copy stops
        matching and the executor falls back to the full-state hand-off.
        """
        return self._state_epoch

    @property
    def cursor_position(self) -> int:
        """Journal position of the consumed prefix (0 when fresh)."""
        return 0 if self._cursor is None else self._cursor.position

    @property
    def matrix(self) -> CorrelationMatrixView:
        """Read-only view of the engine's live correlation matrix."""
        return CorrelationMatrixView(self._matrix)

    @property
    def ready(self) -> bool:
        """Whether the engine has produced clusters at least once."""
        return self._ready

    @property
    def component_count(self) -> int:
        return len(self._component_cache)

    @property
    def cluster_key_sets(self) -> list[frozenset[str]]:
        """Current clusters as key sets, largest first (a fresh list).

        The order is maintained incrementally
        (:class:`~repro.core.ordering.SortedKeySets`) as components are
        repaired, so reading it never re-sorts.
        """
        return self._order.as_key_sets()

    @property
    def last_order_delta(
        self,
    ) -> tuple[list[frozenset[str]], list[frozenset[str]]]:
        """(removed, added) cluster key sets of the most recent update.

        The exact difference between the previous and current cluster
        lists — what the owning pipeline applies to its merged order so
        session-level assembly is also incremental.
        """
        return list(self._last_removed), list(self._last_added)

    def cluster_set(self) -> ClusterSet:
        """Current clusters as a :class:`ClusterSet` (cached per update)."""
        if self._cluster_set is None:
            self._cluster_set = ClusterSet.from_key_sets(
                self.cluster_key_sets,
                window=self._window,
                correlation_threshold=self._correlation_threshold,
            )
        return self._cluster_set

    def set_repair_mode(self, mode: str) -> None:
        """Switch the repair strategy in place (no session restart).

        The mode only changes how much work future updates do, never
        their output, so the engine's stream position and matrix are
        untouched.  Entering ``"rebuild"`` drops the dendrogram cache (a
        rebuild engine carries none — its checkpoints stay pre-splice
        sized); returning to ``"splice"`` starts re-filling the cache as
        components next go dirty.
        """
        if check_repair_mode(mode) == self._repair_mode:
            return
        self._repair_mode = mode
        self._state_epoch += 1
        if mode != REPAIR_SPLICE:
            self._dendro_cache.clear()
            self._seed_cache.clear()

    def set_kernel(self, kernel: str) -> None:
        """Switch the agglomeration kernel in place (no session restart).

        Like the repair mode, the kernel only changes how updates compute
        their (identical) results, so the stream position, matrix and
        caches are untouched.  Leaving the numpy kernel drops the cached
        inter-seed distance arrays — the Python path never reads them.
        """
        if check_kernel(kernel) == self._kernel:
            return
        self._kernel = kernel
        self._state_epoch += 1
        self._seed_cache.clear()

    def needs_update(self) -> bool:
        """O(1): did this shard's journal move since the engine last read?"""
        if self._cursor is None:
            return True
        return (
            len(self._journal) != self._cursor.position
            or self._journal.epoch != self._cursor.epoch
        )

    # -- updating ------------------------------------------------------------

    def update(self) -> ShardUpdate:
        """Consume newly journaled events; recluster the dirty region."""
        started = time.perf_counter()
        rebuilt = False
        absorbed = 0
        self._last_removed = []
        self._last_added = []
        rewound, events, cursor = self._journal.read_flexible(self._cursor)
        if rewound:
            pending = len(self._extractor.pending_events)
            if rewound < pending or (
                rewound == pending and self._closed_count == 0
            ):
                # The reordered suffix is still inside the provisional
                # trailing group: drop it from the extractor and re-feed
                # the re-sorted tail.  The group registrations diff below
                # picks up any resulting changes.  Rewinding the *whole*
                # pending group is only sound while no group has closed
                # yet: the first pending event is what closed the previous
                # group, and the extractor cannot retract that decision —
                # an insertion landing at or before it must rebuild.
                self._extractor.rewind(rewound)
                absorbed = rewound
            else:
                # The reorder reaches into closed groups — the incremental
                # state no longer matches the stream.  Rebuild.  The old
                # clusters enter the removal delta first (the rescan below
                # only diffs against the freshly emptied order); the
                # netting at the end of this update cancels survivors.
                previous = self._order.as_key_sets()
                self._reset_state()
                self._last_removed = previous
                rebuilt = True
                rewound, events, cursor = self._journal.read_flexible(None)
        self._cursor = cursor
        if events or rewound:
            # state is about to diverge from any worker-cached copy
            self._state_epoch += 1

        closed_count, dirty = self._register_stream(events)

        if not dirty and self._ready:
            return ShardUpdate(
                stats=UpdateStats(
                    events_consumed=len(events),
                    groups_closed=closed_count,
                    dirty_keys=0,
                    components_total=len(self._component_cache),
                    components_reclustered=0,
                    components_reused=len(self._component_cache),
                    rebuilt=rebuilt,
                    reorders_absorbed=absorbed,
                    shards_updated=1,
                ),
                changed=False,
                seconds=time.perf_counter() - started,
            )

        structure_kept = self._matrix.structure_version == self._seen_structure
        if not self._ready or not structure_kept:
            reclustered, merges_reused, merges_recomputed, kernel_components = (
                self._rescan_components(dirty, splice_ok=structure_kept)
            )
        else:
            reclustered, merges_reused, merges_recomputed, kernel_components = (
                self._recluster_dirty(dirty)
            )
        self._seen_structure = self._matrix.structure_version
        self._ready = True

        if self._last_removed and self._last_added:
            # Net out clusters that were evicted and re-added unchanged
            # (e.g. two components bridged into one holding the same
            # clusters): the delta — and the changed flag — reflect only
            # real differences in the cluster list.
            removed_counts = Counter(self._last_removed)
            added_counts = Counter(self._last_added)
            common = removed_counts & added_counts
            if common:
                self._last_removed = list((removed_counts - common).elements())
                self._last_added = list((added_counts - common).elements())
        changed = bool(self._last_removed or self._last_added)
        if changed:
            self._cluster_set = None
        total = len(self._component_cache)
        return ShardUpdate(
            stats=UpdateStats(
                events_consumed=len(events),
                groups_closed=closed_count,
                dirty_keys=len(dirty),
                components_total=total,
                components_reclustered=reclustered,
                components_reused=total - reclustered,
                rebuilt=rebuilt,
                reorders_absorbed=absorbed,
                shards_updated=1,
                merges_reused=merges_reused,
                merges_recomputed=merges_recomputed,
                kernel_used=kernel_components > 0,
                kernel_components=kernel_components,
            ),
            changed=changed,
            seconds=time.perf_counter() - started,
        )

    def _register_stream(self, events: list) -> tuple[int, set[str]]:
        """Fold a sorted event run into the extractor and matrix.

        The stream half of an update: close write groups, register them
        (and the provisional trailing group) with the matrix, then compact
        every newly closed group into the matrix's aggregate baseline —
        only the provisional group stays individually retractable, which
        is exactly the retraction the engine ever performs (anything
        deeper forces the :meth:`_reset_state` rebuild).  Returns
        ``(groups_closed, dirty_keys)``.
        """
        old_pending = self._pending_keys
        base = self._closed_count
        closed = self._extractor.feed_many(events)
        new_pending = self._extractor.pending_keys

        # Desired registrations for group indices >= base.  The formerly
        # provisional group sits at index `base`: it either became
        # closed[0] or is still pending; re-register it only if its key set
        # actually changed.
        desired: list[tuple[int, frozenset[str]]] = []
        index = base
        for group in closed:
            desired.append((index, group.keys))
            index += 1
        if new_pending:
            desired.append((index, new_pending))
        removed: list[tuple[int, frozenset[str]]] = []
        if old_pending:
            if desired and desired[0][1] == old_pending:
                desired = desired[1:]
            else:
                removed.append((base, old_pending))
        closed_through = base + len(closed)
        pending_entry = None
        closed_entries = desired
        if desired and desired[-1][0] == closed_through:
            pending_entry = desired[-1]
            closed_entries = desired[:-1]
        if not removed and len(closed_entries) >= STREAM_BATCH_MIN:
            # Bulk run of final groups: count them straight into the
            # matrix's aggregate baseline (vectorized when numpy is
            # present).  Sound only without a retraction in the same
            # step — netting a retraction against re-additions must stay
            # one update_groups call, or a transient pair loss would bump
            # structure_version and void caches the combined call keeps.
            dirty = self._matrix.observe_groups_batch(
                closed_entries[0][0],
                [members for _, members in closed_entries],
            )
            if pending_entry is not None:
                dirty |= self._matrix.update_groups(added=[pending_entry])
        else:
            dirty = self._matrix.update_groups(added=desired, removed=removed)
        self._closed_count = closed_through
        self._pending_keys = new_pending
        self._matrix.compact(self._closed_count)
        return len(closed), dirty

    def _repair_component(
        self,
        component: frozenset[str],
        dirty: set[str],
        dendro_of_key: dict[str, frozenset[str]],
    ) -> SpliceOutcome:
        """Dendrogram for one dirty component — spliced when possible.

        ``dendro_of_key`` maps keys to the cached-dendrogram component
        they belonged to before the update.  Those dendrograms are popped
        from the cache (they are consumed either way; the caller re-caches
        the repaired result) and spliced under ``repair_mode="splice"``;
        ``"rebuild"`` — or an empty cache — re-agglomerates from
        singletons.
        """
        cached: list[Dendrogram] = []
        seed_caches: list[SeedDistanceCache] = []
        seen: set[frozenset[str]] = set()
        for key in component:
            old = dendro_of_key.get(key)
            if old is None or old in seen:
                continue
            seen.add(old)
            dendrogram = self._dendro_cache.pop(old, None)
            if dendrogram is not None:
                cached.append(dendrogram)
            seed_cache = self._seed_cache.pop(old, None)
            if seed_cache is not None:
                seed_caches.append(seed_cache)
        # ``component`` iterates in hash order; sort the collected caches
        # so the spliced merge list (and its checkpoint encoding) is a
        # deterministic function of the session state.
        cached.sort(key=lambda dendrogram: min(dendrogram.items))
        if self._repair_mode == REPAIR_SPLICE and cached:
            return splice_dendrogram(
                self._matrix,
                component,
                dirty,
                cached,
                self._linkage,
                kernel=self._kernel,
                seed_caches=seed_caches,
            )
        return rebuild_outcome(
            self._matrix, component, self._linkage, kernel=self._kernel
        )

    def _rescan_components(
        self, dirty: set[str], *, splice_ok: bool
    ) -> tuple[int, int, int, int]:
        """Full component walk — first update and after structural loss.

        Components untouched by ``dirty`` keep their cached flat clusters
        and dendrograms; a restored checkpoint arrives here with flat
        clusters missing but dendrograms intact, in which case the merges
        are reused and only the cheap threshold cut is redone.  Dirty
        components are repaired through the dendrogram cache exactly like
        the incremental path — unless ``splice_ok`` is false (a lossy
        update: components may have *shrunk*, voiding the splice
        argument), in which case they re-agglomerate wholesale.
        """
        if splice_ok and self._repair_mode == REPAIR_SPLICE:
            dendro_of_key = {
                key: old for old in self._dendro_cache for key in old
            }
        else:
            # Rebuild mode never carries dendrograms, and after a lossy
            # update components may have shrunk, which voids the splice
            # argument for anything the update touched.  Cached entries
            # are not dropped wholesale, though: a component disjoint
            # from ``dirty`` was untouched by the retraction (lost edges
            # only come from retracted groups, whose keys are all dirty),
            # so the loop below carries its dendrogram across exactly
            # like its flat clusters.
            dendro_of_key = {}
        cache: dict[frozenset[str], list[frozenset[str]]] = {}
        dendros: dict[frozenset[str], Dendrogram] = {}
        seed_caches: dict[frozenset[str], SeedDistanceCache] = {}
        of_key: dict[str, frozenset[str]] = {}
        reclustered = 0
        merges_reused = merges_recomputed = kernel_components = 0
        previous = self._order.as_key_sets()
        for component in self._matrix.connected_components():
            frozen = frozenset(component)
            clusters = self._component_cache.get(frozen)
            dendrogram = self._dendro_cache.get(frozen)
            if clusters is None or not component.isdisjoint(dirty):
                if dendrogram is not None and component.isdisjoint(dirty):
                    # restored checkpoint: the merges survived, only the
                    # flat cut is missing
                    merges_reused += len(dendrogram.merges)
                else:
                    outcome = self._repair_component(frozen, dirty, dendro_of_key)
                    dendrogram = outcome.dendrogram
                    merges_reused += outcome.merges_reused
                    merges_recomputed += outcome.merges_recomputed
                    if outcome.kernel == KERNEL_NUMPY:
                        kernel_components += 1
                    if outcome.seed_cache is not None:
                        seed_caches[frozen] = outcome.seed_cache
                clusters = dendrogram.cut(self._max_distance)
                reclustered += 1
            else:
                kept = self._seed_cache.get(frozen)
                if kept is not None:
                    seed_caches[frozen] = kept
            cache[frozen] = clusters
            if dendrogram is not None and self._repair_mode == REPAIR_SPLICE:
                dendros[frozen] = dendrogram
            for key in frozen:
                of_key[key] = frozen
        self._component_cache = cache
        self._dendro_cache = dendros
        self._seed_cache = seed_caches if self._repair_mode == REPAIR_SPLICE else {}
        self._component_of_key = of_key
        self._order = SortedKeySets(
            key_set for clusters in cache.values() for key_set in clusters
        )
        removed, added = diff_sorted(previous, self._order.as_key_sets())
        self._last_removed.extend(removed)
        self._last_added.extend(added)
        return reclustered, merges_reused, merges_recomputed, kernel_components

    def _recluster_dirty(self, dirty: set[str]) -> tuple[int, int, int, int]:
        """O(dirty region): recluster only components touching dirty keys.

        Sound because between structural losses components only ever grow:
        when components merge, the group that bridged them puts a key of
        each old component into ``dirty``, so evicting every dirty key's
        previously cached component removes exactly the entries the merge
        invalidated.
        """
        matrix = self._matrix
        roots: dict[str, None] = {}
        for key in dirty:
            if key in matrix:
                roots.setdefault(matrix.find(key))
        evicted: dict[frozenset[str], list[frozenset[str]]] = {}
        for key in dirty:
            stale = self._component_of_key.get(key)
            if stale is not None:
                old_clusters = self._component_cache.pop(stale, None)
                if old_clusters is not None:
                    evicted[stale] = old_clusters
        merges_reused = merges_recomputed = kernel_components = 0
        for root in roots:
            component = matrix.component_members(root)
            outcome = self._repair_component(component, dirty, self._component_of_key)
            if self._repair_mode == REPAIR_SPLICE:
                self._dendro_cache[component] = outcome.dendrogram
                if outcome.seed_cache is not None:
                    self._seed_cache[component] = outcome.seed_cache
            clusters = outcome.dendrogram.cut(self._max_distance)
            self._component_cache[component] = clusters
            merges_reused += outcome.merges_reused
            merges_recomputed += outcome.merges_recomputed
            if outcome.kernel == KERNEL_NUMPY:
                kernel_components += 1
            for key in component:
                self._component_of_key[key] = component
            old_clusters = evicted.pop(component, None)
            if old_clusters == clusters:
                continue  # identical result: the order needs no touch
            if old_clusters is not None:
                for key_set in old_clusters:
                    self._order.remove(key_set)
                self._last_removed.extend(old_clusters)
            for key_set in clusters:
                self._order.add(key_set)
            self._last_added.extend(clusters)
        # components that vanished by merging into a larger one
        for old_clusters in evicted.values():
            for key_set in old_clusters:
                self._order.remove(key_set)
            self._last_removed.extend(old_clusters)
        return len(roots), merges_reused, merges_recomputed, kernel_components

    # -- checkpointing -------------------------------------------------------

    def to_state(self) -> dict:
        """JSON-safe snapshot: cursor, group registrations, pending events.

        Values inside pending events must be JSON-serialisable (the same
        contract the persistence log imposes); deletions are encoded via
        their op tag.  The first and last consumed events are recorded as
        a fingerprint of the consumed prefix, so :meth:`restore` can
        refuse a store holding a different stream.

        The per-component dendrogram cache rides along (compactly encoded
        via :func:`~repro.core.dendro_repair.dendrogram_to_state`), so a
        resumed session — or a process-pool worker receiving this state
        through :meth:`export_task` — keeps splicing instead of paying
        one wholesale re-agglomeration per component to rebuild it.
        """
        position = 0 if self._cursor is None else self._cursor.position
        return {
            "cursor": None if self._cursor is None else self._cursor.to_state(),
            "closed_count": self._closed_count,
            "head": (
                encode_event(self._journal.event_at(0)) if position else None
            ),
            "tail": (
                encode_event(self._journal.event_at(position - 1))
                if position
                else None
            ),
            "pending": [
                encode_event(event) for event in self._extractor.pending_events
            ],
            # closed groups live compacted in the aggregate baseline;
            # "groups" holds only the retractable provisional tail, so the
            # checkpoint is O(live keys) however long the session ran
            "compacted": self._matrix.compacted_state(),
            "groups": [
                [index, sorted(members)]
                for index, members in sorted(self._matrix.observed_groups().items())
            ],
            # rebuild mode carries no dendrogram cache, so its
            # checkpoints stay exactly as small as before splicing
            "dendrograms": [
                dendrogram_to_state(self._dendro_cache[component])
                for component in sorted(self._dendro_cache, key=sorted)
            ],
        }

    def restore(self, state: dict) -> None:
        """Resume from a :meth:`to_state` snapshot.

        The shard journal must hold the same consumed prefix the snapshot
        was taken over (a deployment re-opening its persisted store does);
        the cursor's epoch is re-based onto the journal's current one, so
        only *future* reorders can disturb the session.  Clusters are
        re-derived from the restored matrix on the next :meth:`update` —
        no consumed event is ever read again.
        """
        cursor_state = state["cursor"]
        if cursor_state is None:
            self._reset_state()
            return
        cursor = JournalCursor.from_state(cursor_state)
        if cursor.position > len(self._journal):
            raise ValueError(
                f"checkpoint cursor at {cursor.position} but the shard "
                f"journal only holds {len(self._journal)} events; the "
                "store does not match the checkpointed deployment"
            )
        if cursor.position:
            for label, index in (("head", 0), ("tail", cursor.position - 1)):
                recorded = state.get(label)
                if recorded is not None and (
                    decode_event(recorded) != self._journal.event_at(index)
                ):
                    raise ValueError(
                        f"checkpoint {label} event {recorded!r} does not "
                        "match the store's journal; the store holds a "
                        "different stream than the checkpointed deployment"
                    )
        self._reset_state()
        self._cursor = JournalCursor(cursor.position, self._journal.epoch)
        self._closed_count = int(state["closed_count"])
        pending_events = [decode_event(entry) for entry in state["pending"]]
        self._extractor.feed_many(pending_events)
        self._pending_keys = self._extractor.pending_keys
        groups = [(int(index), members) for index, members in state["groups"]]
        for index, members in groups:
            if index > self._closed_count:
                raise ValueError(
                    f"checkpoint group index {index} exceeds the closed "
                    f"count {self._closed_count}"
                )
            if index == self._closed_count and frozenset(members) != self._pending_keys:
                raise ValueError(
                    "checkpoint provisional group does not match its "
                    "pending events"
                )
        if groups:
            self._matrix.update_groups(added=groups)
        compacted = state.get("compacted")
        if compacted is not None:
            # version-1 checkpoints carry no baseline: their full group
            # history replays above and is compacted on the next update
            self._matrix.install_compacted(compacted)
        known = set(self._matrix.keys)
        for entry in state.get("dendrograms") or ():
            dendrogram = dendrogram_from_state(entry)
            if not dendrogram.items <= known:
                raise ValueError(
                    "checkpoint dendrogram covers keys absent from the "
                    "checkpointed groups"
                )
            if self._repair_mode == REPAIR_SPLICE:
                self._dendro_cache[dendrogram.items] = dendrogram
        self._seen_structure = self._matrix.structure_version

    # -- process-boundary execution ------------------------------------------

    def export_task(self) -> dict:
        """Self-contained work unit for an out-of-process worker.

        The payload is the engine's :meth:`to_state` checkpoint plus the
        journal slice the engine has not consumed yet — the same
        serialization boundary a deployment restart crosses, so anything
        that survives checkpoint/resume survives a process pool.  The
        cursor is rebased to slice-local coordinates (the worker journal
        holds only the unread suffix) and the consumed-prefix fingerprints
        are dropped, since the prefix stays behind.

        When the engine is fresh, or a reorder has reached into the
        consumed prefix (``state is None``), the whole re-sorted stream is
        shipped and the worker rebuilds from scratch — the slice protocol
        cannot express the in-place rewind, so this path trades the
        serial engine's O(buffer) absorb for a rebuild with identical
        clusters (stats differ: the worker reports ``rebuilt``).
        """
        if self._cursor is not None and (
            self._journal.reorder_depth(self._cursor) == 0
        ):
            state = self.to_state()
            state["cursor"] = {"position": 0, "epoch": 0}
            state["head"] = state["tail"] = None
            base = self._cursor.position
            components = self.components_snapshot() if self._ready else None
        else:
            state = None
            components = None
            base = 0
        return {
            "mode": "full",
            "affinity": {"key": self._affinity_key, "epoch": self._state_epoch},
            "journal_epoch": self._journal.epoch,
            "state": state,
            "components": components,
            "events": encode_event_batch(self._journal.events_from(base)),
            "result_position": len(self._journal),
            "params": {
                "window": self._window,
                "correlation_threshold": self._correlation_threshold,
                "linkage": self._linkage,
                "grouping": self._grouping,
                "repair_mode": self._repair_mode,
                "kernel": self._kernel,
                "journal_backend": journal_backend(self._journal),
            },
        }

    def can_export_slice(self) -> bool:
        """Whether the engine's state can be expressed as a journal slice.

        True once the engine has clustered at least once and no reorder
        has reached into its consumed prefix — the preconditions for
        :meth:`export_slice_task`.
        """
        return (
            self._ready
            and self._cursor is not None
            and self._journal.reorder_depth(self._cursor) == 0
        )

    def export_slice_task(self) -> dict:
        """Slim work unit for a worker that already holds this engine.

        The affinity fast path: no checkpoint, no component snapshot —
        just the unread journal slice plus the ``(affinity key, state
        epoch, cursor position)`` view the worker must hold for the slice
        to apply.  A worker whose cached engine does not match reports a
        miss and the executor falls back to :meth:`export_task`.  Requires
        :meth:`can_export_slice`.
        """
        if not self.can_export_slice():
            raise ValueError(
                "engine state cannot be expressed as a journal slice; "
                "export a full task instead"
            )
        base = self._cursor.position
        return {
            "mode": "slice",
            "affinity": {"key": self._affinity_key, "epoch": self._state_epoch},
            "journal_epoch": self._journal.epoch,
            "base": base,
            "events": encode_event_batch(self._journal.events_from(base)),
            "result_position": len(self._journal),
        }

    def mirror_consume(self, position: int) -> bool:
        """Advance the stream state to ``position`` without reclustering.

        The parent half of a slice hand-off: the sticky worker does the
        re-agglomeration on its cached engine, the parent replays only the
        cheap stream bookkeeping — cursor, extractor, matrix counts,
        compaction — so its own state stays checkpoint-complete.  Cluster
        caches are not touched; the caller installs the worker's
        components next.  Returns ``False`` when the stream cannot be
        mirrored in order (fresh engine, a reorder into the consumed
        prefix, or ``position`` out of range) — the caller must fall back
        to a full local :meth:`update`.
        """
        if self._cursor is None or not self._ready:
            return False
        if self._journal.reorder_depth(self._cursor) > 0:
            return False
        start = self._cursor.position
        if position < start or position > len(self._journal):
            return False
        events = self._journal.events_from(start)[: position - start]
        self._cursor = JournalCursor(position, self._journal.epoch)
        self._register_stream(events)
        return True

    def components_snapshot(self) -> list[tuple[list[str], list[list[str]]]]:
        """The component cluster cache as sorted key lists (picklable)."""
        return [
            (sorted(component), sorted(sorted(c) for c in clusters))
            for component, clusters in self._component_cache.items()
        ]

    def install_components(
        self, components: list[tuple[list[str], list[list[str]]]]
    ) -> None:
        """Adopt a :meth:`components_snapshot` as the live cluster cache.

        The snapshot must describe this engine's *current* matrix (the
        caller either took it from an identical engine, or restored the
        matching checkpoint first); subsequent updates then re-agglomerate
        only dirty components instead of rebuilding the cache.
        """
        cache: dict[frozenset[str], list[frozenset[str]]] = {}
        of_key: dict[str, frozenset[str]] = {}
        for keys, clusters in components:
            component = frozenset(keys)
            cache[component] = [frozenset(cluster) for cluster in clusters]
            for key in component:
                of_key[key] = component
        self._component_cache = cache
        self._component_of_key = of_key
        self._order = SortedKeySets(
            key_set for clusters in cache.values() for key_set in clusters
        )
        self._ready = True
        self._cluster_set = None
        self._seen_structure = self._matrix.structure_version

    def adopt_update(
        self,
        task: dict,
        result: ShardUpdate,
        state: dict,
        components: list[tuple[list[str], list[list[str]]]],
    ) -> ShardUpdate:
        """Merge a worker's :func:`~repro.core.executors.run_shard_task`
        outcome back into this engine.

        The worker's post-update checkpoint is restored with its cursor
        rebased onto this engine's real journal (``task`` is the
        :meth:`export_task` payload the worker ran), and the worker's
        component clusters are installed so the expensive re-agglomeration
        is not repeated in the parent.  Returns ``result`` with the
        ``changed`` flag recomputed against the parent's previous clusters
        (the worker cannot see them after a rebuild hand-off).

        If an out-of-order append landed inside the worker's consumed
        range while the task was in flight, the worker's clusters describe
        a stream this journal no longer holds — the stale result is
        discarded and the engine recomputes locally instead of silently
        installing it.
        """
        started = time.perf_counter()
        if (
            self._journal.reorder_depth(
                JournalCursor(task["result_position"], task["journal_epoch"])
            )
            > 0
        ):
            return self.update()
        merged = dict(state)
        merged["cursor"] = {"position": task["result_position"], "epoch": 0}
        merged["head"] = merged["tail"] = None
        previous = self._order.as_key_sets() if self._ready else []
        self.restore(merged)
        self.install_components(components)
        # the engine now holds exactly the state the worker cached under
        # the task's affinity tag, so future slice hand-offs can hit
        self._state_epoch = task["affinity"]["epoch"]
        removed, added = diff_sorted(previous, self._order.as_key_sets())
        self._last_removed = removed
        self._last_added = added
        return replace(
            result,
            changed=bool(removed or added),
            handoff_seconds=result.handoff_seconds
            + (time.perf_counter() - started),
        )

    def adopt_slice(
        self,
        task: dict,
        result: ShardUpdate,
        components: list[tuple[list[str], list[list[str]]]],
    ) -> ShardUpdate:
        """Merge a sticky worker's slice-task outcome back into this engine.

        The cheap counterpart of :meth:`adopt_update` for the affinity
        fast path (``task`` is the :meth:`export_slice_task` payload): the
        parent mirrors the stream bookkeeping locally
        (:meth:`mirror_consume`) and installs the worker's component
        clusters — no checkpoint crosses the boundary.  The parent's
        dendrogram caches are dropped: a slice adopt advances the matrix
        without repairing them, and a later serial update must not splice
        merges that are several updates stale (the sticky worker keeps its
        own, live cache).  Falls back to a full local :meth:`update` when
        the journal reordered while the task was in flight.
        """
        started = time.perf_counter()
        if self._journal.epoch != task["journal_epoch"] or (
            not self.mirror_consume(task["result_position"])
        ):
            return self.update()
        previous = self._order.as_key_sets()
        self.install_components(components)
        self._dendro_cache.clear()
        self._seed_cache.clear()
        removed, added = diff_sorted(previous, self._order.as_key_sets())
        self._last_removed = removed
        self._last_added = added
        return replace(
            result,
            changed=bool(removed or added),
            handoff_seconds=result.handoff_seconds
            + (time.perf_counter() - started),
        )


class ShardedPipeline:
    """Live clustering session sharded by application key prefix.

    Construct it over a store with the application prefixes to shard on,
    then call :meth:`update` whenever new modifications may have been
    recorded.  Only shards whose journals advanced do any work; the merged
    :class:`ClusterSet` over all shards is returned (largest clusters
    first, deterministic order), and per-shard results are available via
    :meth:`cluster_set_for`.

    Every shard's clusters equal the batch reference restricted to that
    prefix: ``cluster_settings(store, key_filter=prefix, ...)``.  Keys
    matching no prefix belong to the catch-all shard (disable it with
    ``catch_all=False`` to drop them, reproducing a filtered deployment).

    Parameters mirror ``cluster_settings``; ``window``,
    ``correlation_threshold``, ``linkage``, ``key_filter``, ``grouping``,
    ``shard_prefixes`` and ``catch_all`` may all be reassigned between
    updates — the change is detected and the session restarts over the
    full stream.

    ``executor`` selects the shard execution strategy (see
    :mod:`repro.core.executors`): ``None`` walks the shards serially in
    the calling thread; a :class:`~repro.core.executors.ThreadShardExecutor`
    or :class:`~repro.core.executors.ProcessShardExecutor` runs them
    concurrently — engines share no state, so any interleaving is safe as
    long as the store is not appended to mid-``update()``.  The executor
    is not part of the session state: it may be swapped between updates
    without restarting the session, and it is caller-owned (closing the
    pipeline does not close the executor).

    ``repair_mode`` selects how dirty components are re-clustered:
    ``"splice"`` (default) repairs each one's cached dendrogram below the
    first affected linkage distance (:mod:`repro.core.dendro_repair`);
    ``"rebuild"`` re-agglomerates from singletons every time.  Both
    produce identical clusters; ``last_stats.merges_reused`` /
    ``merges_recomputed`` report the difference in work.  Unlike the
    clustering parameters, reassigning ``repair_mode`` between updates
    does *not* restart the session — the mode is applied to the live
    engines in place (switching to ``"rebuild"`` drops their dendrogram
    caches; switching back re-fills them as components next go dirty).

    Sessions checkpoint to JSON-safe dicts (:meth:`to_state`) and resume
    (:meth:`from_state`) without re-reading consumed journal events.
    """

    def __init__(
        self,
        store: TTKV,
        shard_prefixes: tuple[str, ...] | list[str] = (),
        *,
        window: float = DEFAULT_WINDOW,
        correlation_threshold: float = DEFAULT_CORRELATION_THRESHOLD,
        linkage: str = LINKAGE_COMPLETE,
        key_filter: str | None = None,
        grouping: str = GROUPING_SLIDING,
        catch_all: bool = True,
        executor: "ShardExecutor | None" = None,
        repair_mode: str = REPAIR_SPLICE,
        kernel: str = KERNEL_AUTO,
        journal_backend: str = BACKEND_AUTO,
    ) -> None:
        self.store = store
        self.shard_prefixes = tuple(shard_prefixes)
        self.catch_all = catch_all
        self.window = window
        self.correlation_threshold = correlation_threshold
        self.linkage = linkage
        self.key_filter = key_filter
        self.grouping = grouping
        self.executor = executor
        self.repair_mode = repair_mode
        self.kernel = kernel
        self.journal_backend = journal_backend
        self.last_stats: UpdateStats | None = None
        self._journal_view: ShardedJournal | None = None
        self._reset()

    def _params(self) -> tuple:
        # repair_mode and kernel are deliberately absent: they never
        # change results, so retuning them applies to the engines in
        # place instead of restarting the session (see update()).
        # journal_backend never changes results either, but retuning it
        # *is* a restart: the shard journals must be rebuilt on the new
        # storage.
        return (
            self.window,
            self.correlation_threshold,
            self.linkage,
            self.key_filter,
            self.grouping,
            tuple(self.shard_prefixes),
            self.catch_all,
            self.journal_backend,
        )

    def _reset(self) -> None:
        if not 0.0 < self.correlation_threshold <= 2.0:
            raise ValueError(
                "correlation threshold must lie in (0, 2], "
                f"got {self.correlation_threshold}"
            )
        if self.linkage not in _LINKAGES:
            raise ValueError(
                f"unknown linkage {self.linkage!r}; options: {_LINKAGES}"
            )
        check_repair_mode(self.repair_mode)
        check_kernel(self.kernel)
        # window and grouping are validated before any journal is attached
        StreamingGroupExtractor(self.window, grouping=self.grouping)
        if self._journal_view is not None:
            self._journal_view.detach()
        self._journal_view = ShardedJournal(
            self.store.journal,
            self.shard_prefixes,
            catch_all=self.catch_all,
            key_filter=self.key_filter,
            backend=resolve_backend(self.journal_backend),
        )
        self._engines = {
            shard_id: ShardEngine(
                self._journal_view.shard(shard_id),
                window=self.window,
                correlation_threshold=self.correlation_threshold,
                linkage=self.linkage,
                grouping=self.grouping,
                repair_mode=self.repair_mode,
                kernel=self.kernel,
            )
            for shard_id in self._journal_view.shard_ids
        }
        self._active_params = self._params()
        self._order = SortedKeySets()
        self._cluster_set: ClusterSet | None = None

    # -- public API ----------------------------------------------------------

    @property
    def shard_ids(self) -> tuple[str, ...]:
        """All shard ids (the prefixes, plus ``""`` for the catch-all)."""
        return tuple(self._engines)

    @property
    def cluster_set(self) -> ClusterSet | None:
        """Merged clusters from the most recent :meth:`update`."""
        return self._cluster_set

    def cluster_set_for(self, shard_id: str) -> ClusterSet:
        """One shard's clusters (equal to batch with ``key_filter=prefix``)."""
        return self._engine(shard_id).cluster_set()

    def matrix_for(self, shard_id: str) -> CorrelationMatrixView:
        """Read-only view of one shard's live correlation matrix."""
        return self._engine(shard_id).matrix

    def needs_update(self) -> bool:
        """O(shards): would :meth:`update` do any work right now?

        True when a parameter was retuned (the next update restarts the
        session) or when any shard journal advanced past its engine's
        cursor.  The fleet driver polls this to skip machines whose
        streams are quiet.
        """
        if self._params() != self._active_params:
            return True
        return any(
            not engine.ready or engine.needs_update()
            for engine in self._engines.values()
        )

    @property
    def pending_events(self) -> int:
        """Journaled events not yet consumed by any shard engine."""
        return sum(
            len(engine.journal) - engine.cursor_position
            for engine in self._engines.values()
        )

    def pairwise_counts(
        self,
    ) -> tuple[dict[str, int], dict[tuple[str, str], int]]:
        """This machine's correlation evidence, summed over all shards.

        The union of every shard matrix's
        :meth:`~repro.core.correlation.CorrelationMatrix.pairwise_counts`
        — shards partition the key space, so the per-shard dicts are
        disjoint and the sum is a plain merge.  This is the snapshot a
        :class:`~repro.fleet.merge.FleetCorrelationMerge` diffs between
        updates to produce count deltas.
        """
        counts: dict[str, int] = {}
        common: dict[tuple[str, str], int] = {}
        for engine in self._engines.values():
            shard_counts, shard_common = engine.matrix.pairwise_counts()
            for key, count in shard_counts.items():
                counts[key] = counts.get(key, 0) + count
            for pair, count in shard_common.items():
                common[pair] = common.get(pair, 0) + count
        return counts, common

    def _engine(self, shard_id: str) -> ShardEngine:
        try:
            return self._engines[shard_id]
        except KeyError:
            raise KeyError(
                f"no shard {shard_id!r}; shards: {list(self._engines)}"
            ) from None

    def close(self) -> None:
        """Detach from the store's journal (the session stops tracking it)."""
        if self._journal_view is not None:
            self._journal_view.detach()

    def update(self) -> ClusterSet:
        """Consume newly journaled events and return the merged clusters.

        Shards whose journals did not advance are skipped entirely — their
        engines are not even asked to read.  The shards that did advance
        run through the configured executor (serially in this thread when
        ``executor`` is ``None``); per-shard wall times land in
        ``last_stats.shard_timings``.  Retuning any constructor parameter
        between calls restarts the session over the full stream, exactly
        like the unsharded pipeline.
        """
        session_rebuilt = False
        if self._params() != self._active_params:
            self._reset()
            session_rebuilt = True
        for engine in self._engines.values():
            engine.set_repair_mode(self.repair_mode)
            engine.set_kernel(self.kernel)
        events = groups = dirty = total = reclustered = reused = absorbed = 0
        merges_reused = merges_recomputed = kernel_components = 0
        engine_rebuilt = False
        changed = False
        pending: list[tuple[str, ShardEngine]] = []
        for shard_id, engine in self._engines.items():
            if engine.ready and not engine.needs_update():
                count = engine.component_count
                total += count
                reused += count
            else:
                pending.append((shard_id, engine))
        wall_started = time.perf_counter()
        if self.executor is None:
            results = [engine.update() for _, engine in pending]
        else:
            results = self.executor.map_shards(
                [engine for _, engine in pending]
            )
        wall_seconds = time.perf_counter() - wall_started
        shard_timings: dict[str, float] = {}
        handoff_seconds = 0.0
        for (shard_id, engine), result in zip(pending, results):
            shard_timings[shard_id] = result.seconds
            handoff_seconds += result.handoff_seconds
            events += result.stats.events_consumed
            groups += result.stats.groups_closed
            dirty += result.stats.dirty_keys
            total += result.stats.components_total
            reclustered += result.stats.components_reclustered
            reused += result.stats.components_reused
            absorbed += result.stats.reorders_absorbed
            merges_reused += result.stats.merges_reused
            merges_recomputed += result.stats.merges_recomputed
            kernel_components += result.stats.kernel_components
            engine_rebuilt = engine_rebuilt or result.stats.rebuilt
            changed = changed or result.changed
            removed, added = engine.last_order_delta
            for key_set in removed:
                self._order.remove(key_set)
            for key_set in added:
                self._order.add(key_set)
        busy_seconds = sum(shard_timings.values())
        if changed or self._cluster_set is None:
            # the merged order is maintained incrementally from the
            # engines' deltas — no cross-shard re-sort per update
            self._cluster_set = ClusterSet.from_key_sets(
                self._order.as_key_sets(),
                window=self.window,
                correlation_threshold=self.correlation_threshold,
            )
        self.last_stats = UpdateStats(
            events_consumed=events,
            groups_closed=groups,
            dirty_keys=dirty,
            components_total=total,
            components_reclustered=reclustered,
            components_reused=reused,
            rebuilt=session_rebuilt or engine_rebuilt,
            reorders_absorbed=absorbed,
            shards_updated=len(pending),
            shards_total=len(self._engines),
            shard_timings=shard_timings,
            slowest_shard=(
                max(shard_timings, key=shard_timings.__getitem__)
                if shard_timings
                else None
            ),
            parallel_speedup=(
                busy_seconds / wall_seconds
                if wall_seconds > 0 and busy_seconds > 0
                else 1.0
            ),
            handoff_seconds=handoff_seconds,
            merges_reused=merges_reused,
            merges_recomputed=merges_recomputed,
            kernel_used=kernel_components > 0,
            kernel_components=kernel_components,
        )
        return self._cluster_set

    # -- checkpointing -------------------------------------------------------

    def to_state(self) -> dict:
        """The whole session as a JSON-safe dict (parameters + per-shard).

        Pair with :meth:`from_state` to survive a deployment restart: the
        restarted process re-opens its persisted store, restores the
        session, and the next :meth:`update` consumes only events the
        checkpointed session had not read.
        """
        return {
            "version": STATE_VERSION,
            "params": {
                "window": self.window,
                "correlation_threshold": self.correlation_threshold,
                "linkage": self.linkage,
                "key_filter": self.key_filter,
                "grouping": self.grouping,
                "shard_prefixes": list(self.shard_prefixes),
                "catch_all": self.catch_all,
                "repair_mode": self.repair_mode,
                "kernel": self.kernel,
                "journal_backend": self.journal_backend,
            },
            "shards": {
                shard_id: engine.to_state()
                for shard_id, engine in self._engines.items()
            },
        }

    @classmethod
    def from_state(
        cls,
        store: TTKV,
        state: dict,
        *,
        executor: "ShardExecutor | None" = None,
        repair_mode: str | None = None,
        kernel: str | None = None,
        journal_backend: str | None = None,
    ) -> "ShardedPipeline":
        """Rebuild a session over ``store`` from :meth:`to_state` output.

        ``store`` must hold (at least) the journal the checkpointed
        session had consumed — a deployment re-opening its persisted TTKV
        satisfies this.  Always returns a :class:`ShardedPipeline`, with
        the checkpoint's parameters (not the defaults of ``cls``).
        ``executor`` is runtime configuration, not session state, so the
        resumed session takes whatever the caller passes (default:
        serial).  ``repair_mode`` and ``kernel`` likewise affect only how
        much work updates do, never their output: ``None`` (default)
        keeps the checkpoint's value, an explicit value overrides it
        (pre-kernel checkpoints default to ``"auto"``).
        ``journal_backend`` follows the same rule — version-2 and older
        checkpoints carry no backend and default to ``"auto"``.
        """
        version = state.get("version")
        if version not in SUPPORTED_STATE_VERSIONS:
            raise CheckpointError(
                f"unsupported session state version {version!r} "
                f"(expected one of {SUPPORTED_STATE_VERSIONS})"
            )
        try:
            params = state["params"]
            pipeline = ShardedPipeline(
                store,
                shard_prefixes=tuple(params["shard_prefixes"]),
                window=params["window"],
                correlation_threshold=params["correlation_threshold"],
                linkage=params["linkage"],
                key_filter=params["key_filter"],
                grouping=params["grouping"],
                catch_all=params["catch_all"],
                executor=executor,
                repair_mode=(
                    repair_mode
                    if repair_mode is not None
                    else params.get("repair_mode", REPAIR_SPLICE)
                ),
                kernel=(
                    kernel
                    if kernel is not None
                    else params.get("kernel", KERNEL_AUTO)
                ),
                journal_backend=(
                    journal_backend
                    if journal_backend is not None
                    else params.get("journal_backend", BACKEND_AUTO)
                ),
            )
            shards = state["shards"]
        except (KeyError, TypeError, AttributeError) as error:
            # a truncated/hand-damaged checkpoint loses fields: surface
            # one typed error instead of the parse's bare KeyError
            raise CorruptCheckpointError(
                f"session checkpoint (version {version}) is truncated or "
                f"corrupt: missing/invalid field {error!r}"
            ) from error
        if set(shards) != set(pipeline._engines):
            raise CheckpointError(
                f"checkpoint shards {sorted(shards)} do not match the "
                f"configured shards {sorted(pipeline._engines)}"
            )
        for shard_id, shard_state in shards.items():
            try:
                pipeline._engines[shard_id].restore(shard_state)
            except CheckpointError:
                raise
            except (KeyError, TypeError, AttributeError) as error:
                raise CorruptCheckpointError(
                    f"shard {shard_id!r} checkpoint (version {version}) is "
                    f"truncated or corrupt: missing/invalid field {error!r}"
                ) from error
        return pipeline

"""Disjoint-set forest with member tracking, for incremental components.

The correlation matrix's connected components bound every cluster, so the
streaming engine needs them after every update.  Recomputing them with a
graph traversal costs O(live keys + edges) per update; a union-find kept
in step with the matrix makes the maintenance cost O(α) per observed
co-occurrence and lets the engine ask for *one dirty component* without
touching the rest.

This implementation uses the two classic accelerations — path compression
in :meth:`find` and union by size in :meth:`union` — and additionally
keeps, per root, the concrete member set (smaller-into-larger merging, so
total member-moving work is O(n log n) over any union sequence).  Member
tracking is what turns "which component is key k in?" into an O(α) lookup
plus an O(|component|) copy of just that component.

Union-find cannot *split* components, so a retraction that severs an edge
invalidates the structure; the owner (:class:`~repro.core.correlation.
CorrelationMatrix`) detects lossy updates and rebuilds — the
rebuild-on-retraction policy from ROADMAP.md.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class UnionFind:
    """Disjoint sets over hashable items, with per-root member sets."""

    __slots__ = ("_parent", "_size", "_members")

    def __init__(self) -> None:
        self._parent: dict = {}
        self._size: dict = {}
        self._members: dict = {}

    def add(self, item) -> None:
        """Register ``item`` as a singleton set (no-op if already known)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1
            self._members[item] = {item}

    def __contains__(self, item) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        """Number of items (not components)."""
        return len(self._parent)

    @property
    def component_count(self) -> int:
        return len(self._members)

    def find(self, item):
        """Root of ``item``'s set, with full path compression."""
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, item_a, item_b):
        """Merge the sets of two items; return the surviving root."""
        root_a = self.find(item_a)
        root_b = self.find(item_b)
        if root_a == root_b:
            return root_a
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size.pop(root_b)
        self._members[root_a] |= self._members.pop(root_b)
        return root_a

    def union_many(self, items: Iterable) -> None:
        """Merge all ``items`` (registering unknown ones) into one set."""
        anchor = None
        for item in items:
            self.add(item)
            if anchor is None:
                anchor = item
            else:
                anchor = self.union(anchor, item)

    def members(self, item) -> frozenset:
        """The full member set of ``item``'s component (a frozen copy)."""
        return frozenset(self._members[self.find(item)])

    def components(self) -> Iterator[set]:
        """Iterate the live member sets (internal storage — do not mutate)."""
        return iter(self._members.values())

"""Ocasta's core: write-group extraction, correlation, clustering, search.

The high-level entry point is :func:`repro.core.pipeline.cluster_settings`,
which turns a TTKV into a :class:`~repro.core.cluster_model.ClusterSet`
using the paper's defaults (1-second sliding window, complete-linkage HAC,
correlation threshold 2).
"""

from repro.core.windowing import (
    StreamingGroupExtractor,
    WriteGroup,
    extract_write_groups,
    key_group_sets,
)
from repro.core.correlation import (
    CorrelationMatrix,
    CorrelationMatrixView,
    correlation,
    correlation_to_distance,
    distance_to_correlation,
)
from repro.core.unionfind import UnionFind
from repro.core.dendrogram import Dendrogram, Merge
from repro.core.clustering import (
    agglomerate_clusters,
    component_clusters,
    hac_complete_linkage,
)
from repro.core.dendro_repair import (
    REPAIR_MODES,
    REPAIR_REBUILD,
    REPAIR_SPLICE,
    SpliceOutcome,
    build_dendrogram,
    splice_dendrogram,
)
from repro.core.hac_kernel import (
    KERNEL_AUTO,
    KERNEL_NAMES,
    KERNEL_NUMPY,
    KERNEL_PYTHON,
    check_kernel,
    numpy_available,
)
from repro.core.cluster_model import (
    Cluster,
    ClusterSet,
    ClusterVersion,
    cluster_versions,
)
from repro.core.pipeline import cluster_settings, singleton_clusters
from repro.core.incremental import ClusterSession, IncrementalPipeline, UpdateStats
from repro.core.sharded import ShardEngine, ShardedPipeline
from repro.core.executors import (
    ProcessShardExecutor,
    SerialExecutor,
    ShardExecutor,
    ThreadShardExecutor,
    make_executor,
)
from repro.core.sorting import sort_clusters_for_search
from repro.core.search import Candidate, SearchStrategy, search_order
from repro.core.accuracy import (
    ClusterVerdict,
    classify_cluster,
    evaluate_clustering,
)
from repro.core.repair import RepairEngine, RepairOutcome

__all__ = [
    "StreamingGroupExtractor",
    "WriteGroup",
    "extract_write_groups",
    "key_group_sets",
    "CorrelationMatrix",
    "CorrelationMatrixView",
    "UnionFind",
    "correlation",
    "correlation_to_distance",
    "distance_to_correlation",
    "Dendrogram",
    "Merge",
    "hac_complete_linkage",
    "agglomerate_clusters",
    "component_clusters",
    "REPAIR_MODES",
    "REPAIR_REBUILD",
    "REPAIR_SPLICE",
    "SpliceOutcome",
    "build_dendrogram",
    "splice_dendrogram",
    "KERNEL_AUTO",
    "KERNEL_NAMES",
    "KERNEL_NUMPY",
    "KERNEL_PYTHON",
    "check_kernel",
    "numpy_available",
    "ClusterSession",
    "IncrementalPipeline",
    "UpdateStats",
    "ShardEngine",
    "ShardedPipeline",
    "ShardExecutor",
    "SerialExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "make_executor",
    "Cluster",
    "ClusterSet",
    "ClusterVersion",
    "cluster_versions",
    "cluster_settings",
    "singleton_clusters",
    "sort_clusters_for_search",
    "Candidate",
    "SearchStrategy",
    "search_order",
    "ClusterVerdict",
    "classify_cluster",
    "evaluate_clustering",
    "RepairEngine",
    "RepairOutcome",
]

"""Incremental clustering: stream events into live clusters.

Ocasta runs clustering *continuously* alongside logging; recomputing the
whole pipeline per update would be O(trace) every time.  The
:class:`IncrementalPipeline` instead keeps the full pipeline state live, so
an update's cost is independent of how long the trace already is: it pays
O(new events) for ingestion, O(live keys) for the component scan and
cluster-set assembly, and the HAC bill only for components a new group
actually touched (tracking components with an incremental union-find to
shed the O(keys) scan is noted in ROADMAP.md):

1. new modifications are pulled from the TTKV's append-ordered journal via
   a cursor (no re-sort, no re-scan of consumed events);
2. a :class:`~repro.core.windowing.StreamingGroupExtractor` closes write
   groups as the stream advances, keeping the trailing group *provisional*
   (a future event may still extend it);
3. the :class:`~repro.core.correlation.CorrelationMatrix` is updated in
   place — only pairs involving keys of touched groups change;
4. only connected components containing a *dirty* key are re-agglomerated;
   every other component's flat clusters are reused from cache.

The result after every :meth:`IncrementalPipeline.update` equals what the
batch :func:`~repro.core.pipeline.cluster_settings` would produce from the
same store — the property-based equivalence tests pin this for arbitrary
prefixes of arbitrary event streams.

Example::

    >>> from repro.ttkv.store import TTKV
    >>> from repro.core.incremental import IncrementalPipeline
    >>> store = TTKV()
    >>> live = IncrementalPipeline(store)
    >>> store.record_write("app/feature_on", True, 10.0)
    >>> store.record_write("app/feature_level", 3, 10.0)
    >>> [c.sorted_keys() for c in live.update()]
    [['app/feature_level', 'app/feature_on']]
    >>> store.record_write("app/theme", "dark", 500.0)
    >>> [c.sorted_keys() for c in live.update()]
    [['app/feature_level', 'app/feature_on'], ['app/theme']]
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.clustering import (
    LINKAGE_COMPLETE,
    _LINKAGES,
    component_clusters,
)
from repro.core.cluster_model import ClusterSet
from repro.core.correlation import CorrelationMatrix
from repro.core.windowing import GROUPING_SLIDING, StreamingGroupExtractor
from repro.exceptions import StaleCursorError
from repro.ttkv.journal import JournalCursor
from repro.ttkv.store import TTKV


@dataclass(frozen=True)
class UpdateStats:
    """What one :meth:`IncrementalPipeline.update` call actually did."""

    events_consumed: int
    groups_closed: int
    dirty_keys: int
    components_total: int
    components_reclustered: int
    components_reused: int
    rebuilt: bool


class IncrementalPipeline:
    """Live clustering session over a growing TTKV.

    Construct it once over a store, then call :meth:`update` whenever new
    modifications may have been recorded; it returns the current
    :class:`~repro.core.cluster_model.ClusterSet`, identical to a batch
    :func:`~repro.core.pipeline.cluster_settings` run over the store's full
    event stream with the same parameters.

    Parameters mirror ``cluster_settings``: ``window`` (seconds),
    ``correlation_threshold`` (in ``(0, 2]``), ``linkage``, an optional
    ``key_filter`` prefix, and ``grouping`` (``sliding`` or ``buckets``).

    >>> from repro.ttkv.store import TTKV
    >>> store = TTKV()
    >>> live = IncrementalPipeline(store, window=1.0, correlation_threshold=2.0)
    >>> for t in (10.0, 75.0, 300.0):
    ...     store.record_write("editor/font", f"serif@{t}", t)
    ...     store.record_write("editor/size", t, t)
    >>> [c.sorted_keys() for c in live.update()]
    [['editor/font', 'editor/size']]
    >>> live.last_stats.components_reclustered
    1
    """

    def __init__(
        self,
        store: TTKV,
        window: float = 1.0,
        correlation_threshold: float = 2.0,
        linkage: str = LINKAGE_COMPLETE,
        key_filter: str | None = None,
        grouping: str = GROUPING_SLIDING,
    ) -> None:
        self.store = store
        self.window = window
        self.correlation_threshold = correlation_threshold
        self.linkage = linkage
        self.key_filter = key_filter
        self.grouping = grouping
        self.last_stats: UpdateStats | None = None
        self._reset()

    def _params(self) -> tuple:
        return (
            self.window,
            self.correlation_threshold,
            self.linkage,
            self.key_filter,
            self.grouping,
        )

    def _reset(self) -> None:
        if not 0.0 < self.correlation_threshold <= 2.0:
            raise ValueError(
                "correlation threshold must lie in (0, 2], "
                f"got {self.correlation_threshold}"
            )
        if self.linkage not in _LINKAGES:
            raise ValueError(
                f"unknown linkage {self.linkage!r}; options: {_LINKAGES}"
            )
        # window and grouping are validated by the extractor
        self._extractor = StreamingGroupExtractor(self.window, grouping=self.grouping)
        self._active_params = self._params()
        self._cursor: JournalCursor | None = None
        self._matrix = CorrelationMatrix()
        self._closed_count = 0
        self._pending_keys: frozenset[str] = frozenset()
        self._component_cache: dict[frozenset[str], list[frozenset[str]]] = {}
        self._cluster_set: ClusterSet | None = None

    # -- public API ----------------------------------------------------------

    @property
    def cluster_set(self) -> ClusterSet | None:
        """Clusters from the most recent :meth:`update` (``None`` before one)."""
        return self._cluster_set

    @property
    def matrix(self) -> CorrelationMatrix:
        """The live correlation matrix (read-only use only)."""
        return self._matrix

    def update(self) -> ClusterSet:
        """Consume newly journaled events and return the current clusters.

        Retuning ``window``/``correlation_threshold``/``linkage``/
        ``key_filter``/``grouping`` between calls is supported: the change
        is detected here and the session restarts over the full stream, so
        the returned clusters always reflect the current parameters.
        """
        rebuilt = False
        if self._params() != self._active_params:
            self._reset()
            rebuilt = True
        try:
            events, self._cursor = self.store.journal.read(self._cursor)
        except StaleCursorError:
            # An out-of-order append landed inside our consumed prefix; the
            # incremental state no longer matches the stream.  Rebuild.
            self._reset()
            rebuilt = True
            events, self._cursor = self.store.journal.read(None)
        if self.key_filter is not None:
            prefix = self.key_filter
            events = [e for e in events if e[1].startswith(prefix)]

        old_pending = self._pending_keys
        base = self._closed_count
        closed = self._extractor.feed_many(events)
        new_pending = self._extractor.pending_keys

        # Desired registrations for group indices >= base.  The formerly
        # provisional group sits at index `base`: it either became
        # closed[0] or is still pending; re-register it only if its key set
        # actually changed.
        desired: list[tuple[int, frozenset[str]]] = []
        index = base
        for group in closed:
            desired.append((index, group.keys))
            index += 1
        if new_pending:
            desired.append((index, new_pending))
        removed: list[tuple[int, frozenset[str]]] = []
        if old_pending:
            if desired and desired[0][1] == old_pending:
                desired = desired[1:]
            else:
                removed.append((base, old_pending))
        dirty = self._matrix.update_groups(added=desired, removed=removed)
        self._closed_count = base + len(closed)
        self._pending_keys = new_pending

        if not dirty and self._cluster_set is not None:
            self.last_stats = UpdateStats(
                events_consumed=len(events),
                groups_closed=len(closed),
                dirty_keys=0,
                components_total=len(self._component_cache),
                components_reclustered=0,
                components_reused=len(self._component_cache),
                rebuilt=rebuilt,
            )
            return self._cluster_set

        components = self._matrix.connected_components()
        cache: dict[frozenset[str], list[frozenset[str]]] = {}
        key_sets: list[frozenset[str]] = []
        reclustered = 0
        for component in components:
            frozen = frozenset(component)
            clusters = self._component_cache.get(frozen)
            if clusters is None or not component.isdisjoint(dirty):
                clusters = component_clusters(
                    self._matrix,
                    frozen,
                    correlation_threshold=self.correlation_threshold,
                    linkage=self.linkage,
                )
                reclustered += 1
            cache[frozen] = clusters
            key_sets.extend(clusters)
        self._component_cache = cache

        key_sets.sort(key=lambda c: (-len(c), tuple(sorted(c))))
        self._cluster_set = ClusterSet.from_key_sets(
            key_sets,
            window=self.window,
            correlation_threshold=self.correlation_threshold,
        )
        self.last_stats = UpdateStats(
            events_consumed=len(events),
            groups_closed=len(closed),
            dirty_keys=len(dirty),
            components_total=len(components),
            components_reclustered=reclustered,
            components_reused=len(components) - reclustered,
            rebuilt=rebuilt,
        )
        return self._cluster_set


#: Back-compat-friendly alias: an :class:`IncrementalPipeline` *is* the
#: live clustering session the paper's recording mode maintains.
ClusterSession = IncrementalPipeline

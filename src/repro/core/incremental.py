"""Incremental clustering: stream events into live clusters.

Ocasta runs clustering *continuously* alongside logging; recomputing the
whole pipeline per update would be O(trace) every time.  An
:class:`IncrementalPipeline` instead keeps the full pipeline state live —
it is the single-stream specialisation of the sharded engine in
:mod:`repro.core.sharded` (one catch-all shard), so one ``update()`` costs:

1. O(new events) ingestion — modifications are pulled from the TTKV's
   append-ordered journal via a cursor (no re-sort, no re-scan of consumed
   events); an out-of-order logger race that lands inside the still-open
   trailing write group is absorbed by rewinding that group (an O(buffer)
   fixup), and only older reorders force a rebuild;
2. a :class:`~repro.core.windowing.StreamingGroupExtractor` closes write
   groups as the stream advances, keeping the trailing group *provisional*
   (a future event may still extend it);
3. the :class:`~repro.core.correlation.CorrelationMatrix` is updated in
   place — only pairs involving keys of touched groups change — and its
   incremental union-find keeps connected components maintained at O(α)
   per co-occurrence;
4. only components containing a *dirty* key are re-agglomerated, found
   directly through the union-find instead of a scan over all live keys;
   every other component's flat clusters are reused from cache.

The result after every :meth:`IncrementalPipeline.update` equals what the
batch :func:`~repro.core.pipeline.cluster_settings` would produce from the
same store — the property-based equivalence tests pin this for arbitrary
prefixes of arbitrary event streams.  Deployments hosting several
applications should use :class:`~repro.core.sharded.ShardedPipeline`
directly: one engine per application prefix, updates only where the
journal advanced, and JSON checkpoint/resume.

Example::

    >>> from repro.ttkv.store import TTKV
    >>> from repro.core.incremental import IncrementalPipeline
    >>> store = TTKV()
    >>> live = IncrementalPipeline(store)
    >>> store.record_write("app/feature_on", True, 10.0)
    >>> store.record_write("app/feature_level", 3, 10.0)
    >>> [c.sorted_keys() for c in live.update()]
    [['app/feature_level', 'app/feature_on']]
    >>> store.record_write("app/theme", "dark", 500.0)
    >>> [c.sorted_keys() for c in live.update()]
    [['app/feature_level', 'app/feature_on'], ['app/theme']]
"""

from __future__ import annotations

from repro.core.clustering import LINKAGE_COMPLETE
from repro.core.correlation import CorrelationMatrixView
from repro.core.dendro_repair import REPAIR_SPLICE
from repro.core.hac_kernel import KERNEL_AUTO
from repro.core.sharded import ShardedPipeline, UpdateStats
from repro.core.windowing import GROUPING_SLIDING
from repro.ttkv.columnar import BACKEND_AUTO
from repro.ttkv.sharding import CATCH_ALL
from repro.ttkv.store import TTKV

__all__ = ["ClusterSession", "IncrementalPipeline", "UpdateStats"]


class IncrementalPipeline(ShardedPipeline):
    """Live clustering session over a growing TTKV (single stream).

    Construct it once over a store, then call :meth:`update` whenever new
    modifications may have been recorded; it returns the current
    :class:`~repro.core.cluster_model.ClusterSet`, identical to a batch
    :func:`~repro.core.pipeline.cluster_settings` run over the store's full
    event stream with the same parameters.

    This is a :class:`~repro.core.sharded.ShardedPipeline` with exactly one
    catch-all shard — the right tool when the store effectively holds one
    application (possibly selected via ``key_filter``).  Machines hosting
    many applications should shard per application prefix instead.

    Parameters mirror ``cluster_settings``: ``window`` (seconds),
    ``correlation_threshold`` (in ``(0, 2]``), ``linkage``, an optional
    ``key_filter`` prefix, and ``grouping`` (``sliding`` or ``buckets``).

    >>> from repro.ttkv.store import TTKV
    >>> store = TTKV()
    >>> live = IncrementalPipeline(store, window=1.0, correlation_threshold=2.0)
    >>> for t in (10.0, 75.0, 300.0):
    ...     store.record_write("editor/font", f"serif@{t}", t)
    ...     store.record_write("editor/size", t, t)
    >>> [c.sorted_keys() for c in live.update()]
    [['editor/font', 'editor/size']]
    >>> live.last_stats.components_reclustered
    1
    """

    def __init__(
        self,
        store: TTKV,
        window: float = 1.0,
        correlation_threshold: float = 2.0,
        linkage: str = LINKAGE_COMPLETE,
        key_filter: str | None = None,
        grouping: str = GROUPING_SLIDING,
        executor=None,
        repair_mode: str = REPAIR_SPLICE,
        kernel: str = KERNEL_AUTO,
        journal_backend: str = BACKEND_AUTO,
    ) -> None:
        super().__init__(
            store,
            shard_prefixes=(),
            window=window,
            correlation_threshold=correlation_threshold,
            linkage=linkage,
            key_filter=key_filter,
            grouping=grouping,
            catch_all=True,
            executor=executor,
            repair_mode=repair_mode,
            kernel=kernel,
            journal_backend=journal_backend,
        )

    @property
    def matrix(self) -> CorrelationMatrixView:
        """Read-only view of the live correlation matrix.

        Mutators raise: the matrix is owned by the session, and mutating
        it directly would silently desynchronise the incremental state
        from the journal cursor.
        """
        return self.matrix_for(CATCH_ALL)


#: Back-compat-friendly alias: an :class:`IncrementalPipeline` *is* the
#: live clustering session the paper's recording mode maintains.
ClusterSession = IncrementalPipeline

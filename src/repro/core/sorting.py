"""Cluster prioritisation for the repair search.

"We use the intuition that changes to configuration settings should be
infrequent ... Ocasta thus sorts the clusters by the number of times they
have been modified over the application's history."  (§III-B)

Primary order is therefore ascending modification count.  Ties are broken
by recency of last modification, most recent first — the paper notes
"Ocasta's bias towards checking more recently modified clusters first"
when explaining Fig. 2a, and a just-misconfigured cluster is by definition
recently modified.
"""

from __future__ import annotations

from repro.core.cluster_model import (
    Cluster,
    ClusterSet,
    cluster_last_modified,
    cluster_modification_count,
)
from repro.ttkv.store import TTKV

SORT_MODCOUNT = "modcount"
SORT_RECENCY = "recency"
SORT_NONE = "none"

_SORTS = (SORT_MODCOUNT, SORT_RECENCY, SORT_NONE)


def sort_clusters_for_search(
    cluster_set: ClusterSet,
    store: TTKV,
    policy: str = SORT_MODCOUNT,
) -> list[Cluster]:
    """Order clusters for the repair search.

    Policies (``modcount`` is the paper's; the others feed the sort
    ablation benchmark):

    - ``modcount``: ascending modification count, recent-first tie-break;
    - ``recency``: most recently modified first;
    - ``none``: clustering output order (effectively random w.r.t. the
      offending cluster).
    """
    if policy not in _SORTS:
        raise ValueError(f"unknown sort policy {policy!r}; options: {_SORTS}")
    clusters = cluster_set.clusters
    if policy == SORT_NONE:
        return clusters
    if policy == SORT_RECENCY:
        return sorted(
            clusters,
            key=lambda c: (-cluster_last_modified(store, c), c.cluster_id),
        )
    return sorted(
        clusters,
        key=lambda c: (
            cluster_modification_count(store, c),
            -cluster_last_modified(store, c),
            c.cluster_id,
        ),
    )

"""Array-backed HAC kernel: GIL-free agglomeration over dense blocks.

The pure-Python agglomeration in :mod:`repro.core.clustering` is exact and
the permanent reference implementation, but it holds the GIL for the whole
merge loop, so the thread executor's shard overlap never becomes
wall-clock speedup on stock CPython, and every seeded repair pays a
Python-level sweep over all component edges to derive its starting
distances.  This module is the hot-path replacement for large components:

- :func:`agglomerate_square` runs the merge loop over a dense
  ``float64`` distance matrix with vectorized Lance–Williams updates and
  nearest-neighbour maintenance — numpy's reductions release the GIL, so
  concurrent shard updates on a thread pool genuinely overlap;
- :func:`seed_matrix` derives the inter-cluster linkage distances of an
  arbitrary seed partition by segmented ``max``/``min`` reductions over a
  component's cached distance block
  (:meth:`~repro.core.correlation.CorrelationMatrix.
  component_distance_block`) instead of a per-edge Python sweep.

**Determinism contract.**  The kernel produces merges *bit-identical* to
the pure-Python path — same merge pairs, same order, same recorded
distances — including under distance ties.  This holds because:

- every pairwise distance is computed with the same IEEE-754 double
  operations in both paths (``1.0 / (common/|A| + common/|B|)``);
- ``complete``/``single`` Lance–Williams updates are pure ``max``/``min``
  *selections* over those values — no arithmetic, no rounding — with the
  missing-pair-is-infinite convention mapped onto ``inf`` entries;
- tie-breaks match the heap's ``(distance, id, id)`` ordering exactly:
  cluster ids are min-member ranks (row indices of the seeds sorted by
  smallest key), a merged cluster keeps the smaller row, and
  ``numpy.argmin`` returns the *first* minimum — the lexicographically
  smallest ``(distance, id_a, id_b)`` candidate, which is precisely what
  the reference heap pops.

``average`` linkage is *not* offered: its Lance–Williams update does
float arithmetic whose rounding differs between a seeded and a
from-scratch path, and this repository refuses ulp drift (see
:mod:`repro.core.dendro_repair`); average always takes the Python path.

numpy is a **soft dependency** (``pip install repro-ocasta[fast]``):
without it every entry point below either reports the kernel unavailable
(``kernel="auto"`` falls back to Python silently) or raises a clear error
(``kernel="numpy"`` was explicitly requested).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.dendrogram import Merge

try:  # soft dependency: the pure-Python path is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via tests' import guard
    _np = None

#: Pick the kernel per component: numpy when available and the component
#: is at least :data:`KERNEL_SIZE_THRESHOLD` keys, Python otherwise.
KERNEL_AUTO = "auto"
#: Always use the numpy kernel (raises when numpy is not installed).
KERNEL_NUMPY = "numpy"
#: Always use the pure-Python reference implementation.
KERNEL_PYTHON = "python"
#: The kernel names understood by the engines and ``stream --kernel``.
KERNEL_NAMES = (KERNEL_AUTO, KERNEL_NUMPY, KERNEL_PYTHON)

#: Component size (in keys) at which ``kernel="auto"`` switches from the
#: pure-Python heap to the numpy kernel.  Below this the dense block's
#: allocation and the numpy call overhead outweigh the vectorized loop;
#: above it the kernel wins and keeps winning quadratically
#: (``benchmarks/bench_kernel.py`` measures the crossover).
KERNEL_SIZE_THRESHOLD = 48

#: Linkages the kernel implements (``average`` is Python-only by design).
KERNEL_LINKAGES = ("complete", "single")


def numpy_available() -> bool:
    """Whether the numpy kernel can run in this interpreter."""
    return _np is not None


def check_kernel(kernel: str) -> str:
    """Validate a kernel name (returns it unchanged).

    ``"numpy"`` additionally requires numpy to be importable — asking for
    the fast path explicitly on a box that cannot run it is a
    configuration error, not something to paper over silently.
    """
    if kernel not in KERNEL_NAMES:
        raise ValueError(f"unknown kernel {kernel!r}; options: {KERNEL_NAMES}")
    if kernel == KERNEL_NUMPY and _np is None:
        raise RuntimeError(
            "kernel='numpy' requested but numpy is not installed; "
            "install the fast extra (pip install repro-ocasta[fast]) or "
            "use kernel='auto'/'python'"
        )
    return kernel


def resolve_kernel(kernel: str, linkage: str, size: int) -> str:
    """The concrete kernel (``numpy`` or ``python``) for one agglomeration.

    ``size`` is the component's key count.  ``average`` linkage always
    resolves to Python (the kernel would not be bit-identical, see the
    module docstring); ``auto`` resolves to numpy only above
    :data:`KERNEL_SIZE_THRESHOLD` and when numpy is importable.
    """
    check_kernel(kernel)
    if kernel == KERNEL_PYTHON or linkage not in KERNEL_LINKAGES:
        return KERNEL_PYTHON
    if kernel == KERNEL_NUMPY:
        return KERNEL_NUMPY
    if _np is None or size < KERNEL_SIZE_THRESHOLD:
        return KERNEL_PYTHON
    return KERNEL_NUMPY


def require_numpy():
    """The numpy module, or a clear error when the soft dep is absent."""
    if _np is None:
        raise RuntimeError(
            "this code path needs numpy, which is not installed; "
            "install the fast extra (pip install repro-ocasta[fast])"
        )
    return _np


class DistanceBlock:
    """Dense pairwise distances of one component's keys.

    ``keys`` are the component's keys in sorted order; ``square`` is the
    symmetric ``(n, n)`` ``float64`` matrix of clustering distances with
    ``inf`` on the diagonal and wherever a pair never co-modified (the
    sparse matrix's missing-entry convention).  The array is **owned by
    the cache** (:meth:`~repro.core.correlation.CorrelationMatrix.
    component_distance_block`) and must not be mutated by consumers —
    the kernel copies before agglomerating.
    """

    __slots__ = ("keys", "index", "square")

    def __init__(self, keys: Sequence[str], square) -> None:
        self.keys = tuple(keys)
        self.index = {key: i for i, key in enumerate(self.keys)}
        self.square = square

    def positions(self, cluster) -> "_np.ndarray":
        """Row indices of a key set, sorted (for segmented reductions)."""
        np = require_numpy()
        return np.fromiter(
            (self.index[key] for key in sorted(cluster)),
            dtype=np.intp,
            count=len(cluster),
        )


def _segments(np, positions):
    """Concatenated member columns plus per-seed start offsets."""
    cols = np.concatenate(positions)
    lengths = np.fromiter(
        (len(p) for p in positions), dtype=np.intp, count=len(positions)
    )
    offsets = np.zeros(len(positions), dtype=np.intp)
    np.cumsum(lengths[:-1], out=offsets[1:])
    return cols, offsets


def seed_matrix(
    block: DistanceBlock,
    clusters: Sequence[frozenset],
    linkage: str,
) -> "_np.ndarray":
    """Inter-cluster linkage matrix for a seed partition, vectorized.

    Equivalent to :func:`repro.core.clustering.seed_distances` rendered
    as a dense ``(k, k)`` array (``inf`` where that function has no
    entry): ``complete`` is the maximum cross-pair distance — ``inf``
    whenever any cross pair is missing, because ``max`` with ``inf`` is
    ``inf`` — and ``single`` the minimum.  Pure selection over the block
    values, hence bit-identical to the Python sweep.

    The cost is two segmented reductions over the block — O(n²) C-loop
    work with the GIL released — instead of a Python-level walk of every
    component edge.
    """
    np = require_numpy()
    if linkage not in KERNEL_LINKAGES:
        raise ValueError(
            f"kernel seed matrix supports {KERNEL_LINKAGES}, got {linkage!r}"
        )
    reduce_op = np.maximum if linkage == "complete" else np.minimum
    positions = [block.positions(cluster) for cluster in clusters]
    cols, offsets = _segments(np, positions)
    # (n, k): per source row, the reduction over each seed's columns
    per_seed = reduce_op.reduceat(block.square[:, cols], offsets, axis=1)
    out = np.empty((len(clusters), len(clusters)), dtype=np.float64)
    for row, pos in enumerate(positions):
        if linkage == "complete":
            out[row] = per_seed[pos].max(axis=0)
        else:
            out[row] = per_seed[pos].min(axis=0)
    np.fill_diagonal(out, np.inf)
    return out


def seed_matrix_rows(
    block: DistanceBlock,
    clusters: Sequence[frozenset],
    rows: Sequence[int],
    linkage: str,
) -> "_np.ndarray":
    """The :func:`seed_matrix` rows for a subset of seeds only.

    Returns a ``(len(rows), k)`` array of the requested seeds' distances
    to *every* seed.  Used by the splice repair to refresh only the rows
    an update affected while reusing the cached remainder.
    """
    np = require_numpy()
    reduce_op = np.maximum if linkage == "complete" else np.minimum
    positions = [block.positions(cluster) for cluster in clusters]
    cols, offsets = _segments(np, positions)
    out = np.empty((len(rows), len(clusters)), dtype=np.float64)
    for at, row in enumerate(rows):
        sub = reduce_op.reduceat(block.square[positions[row]][:, cols], offsets, axis=1)
        if linkage == "complete":
            out[at] = sub.max(axis=0)
        else:
            out[at] = sub.min(axis=0)
    return out


def agglomerate_square(
    square: "_np.ndarray",
    clusters: Sequence[frozenset],
    linkage: str,
) -> list[Merge]:
    """Heap-free HAC over a dense inter-cluster distance matrix.

    ``square`` is the ``(k, k)`` symmetric distance matrix of the seed
    partition (``inf`` diagonal and missing pairs) — **mutated in
    place**, pass a copy if the array is shared.  ``clusters`` are the
    seeds sorted by smallest member key, so row index equals the
    reference implementation's min-member-rank cluster id.

    Returns the merges in the exact order
    :func:`repro.core.clustering.agglomerate_clusters` performs them
    (see the module docstring for why the tie-breaks coincide).
    """
    np = require_numpy()
    if linkage not in KERNEL_LINKAGES:
        raise ValueError(
            f"kernel agglomeration supports {KERNEL_LINKAGES}, got {linkage!r}"
        )
    count = len(clusters)
    if square.shape != (count, count):
        raise ValueError(
            f"distance matrix shape {square.shape} does not match "
            f"{count} seed clusters"
        )
    if count < 2:
        return []
    single = linkage == "single"
    combine = np.minimum if single else np.maximum
    inf = np.inf

    # Per-row nearest neighbour among the columns above the diagonal:
    # nn_idx[i] is the smallest j > i minimising square[i, j], so the
    # globally smallest (distance, i, j) is found at the argmin row.
    nn_dist = np.full(count, inf)
    nn_idx = np.zeros(count, dtype=np.intp)

    def rescan(row: int) -> None:
        tail = square[row, row + 1:]
        if tail.size:
            j = int(tail.argmin())
            nn_dist[row] = tail[j]
            nn_idx[row] = row + 1 + j
        else:
            nn_dist[row] = inf

    for row in range(count - 1):
        rescan(row)

    members = list(clusters)
    merges: list[Merge] = []
    for _ in range(count - 1):
        id_a = int(nn_dist.argmin())
        distance = float(nn_dist[id_a])
        if math.isinf(distance):
            break  # remaining clusters have no finite linkage: stop
        id_b = int(nn_idx[id_a])
        left = members[id_a]
        right = members[id_b]
        merged = left | right
        merges.append(
            Merge(left=left, right=right, distance=distance, members=merged)
        )
        members[id_a] = merged
        members[id_b] = None

        # Lance–Williams: the merged cluster keeps row id_a; row id_b dies.
        row = combine(square[id_a], square[id_b])
        row[id_a] = inf
        row[id_b] = inf
        square[id_a, :] = row
        square[:, id_a] = row
        square[id_b, :] = inf
        square[:, id_b] = inf
        nn_dist[id_b] = inf

        # Rows whose nearest neighbour involved either merged row must
        # rescan — their cached minimum may be stale.  That always
        # includes the merged row itself (its neighbour was id_b), and
        # dead rows are all-inf, so a spurious rescan is a no-op.
        stale = ((nn_idx == id_a) | (nn_idx == id_b)).nonzero()[0]
        for other in stale:
            rescan(int(other))
        if single:
            # Single linkage can lower the merged row below other rows'
            # cached minima; adopt column id_a wherever it now wins the
            # (distance, index) order.
            cand = square[:id_a, id_a]
            cur = nn_dist[:id_a]
            better = (cand < cur) | ((cand == cur) & (nn_idx[:id_a] > id_a))
            hits = better.nonzero()[0]
            if hits.size:
                nn_dist[hits] = cand[hits]
                nn_idx[hits] = id_a
    return merges

"""Pluggable shard execution strategies for :class:`ShardedPipeline`.

Shard engines share no mutable state — each owns its journal cursor,
extractor, correlation matrix and cluster cache — so the per-update walk
over dirty shards is embarrassingly parallel.  This module provides the
strategies behind one interface, ``map_shards(engines) ->
list[ShardUpdate]``:

- :class:`SerialExecutor` — update each shard in the calling thread, in
  order.  The reference strategy, and the pipeline's default.
- :class:`ThreadShardExecutor` — a ``concurrent.futures``
  ``ThreadPoolExecutor``.  Engines are updated in place; the GIL bounds
  the wall-clock win for the pure-Python clustering hot path, but shards
  overlap (``UpdateStats.parallel_speedup``), and any future
  GIL-releasing kernel (or a free-threaded interpreter) turns that
  overlap into throughput with no API change.
- :class:`ProcessShardExecutor` — a ``ProcessPoolExecutor``.  Engines
  cross the process boundary through the checkpoint path:
  :meth:`~repro.core.sharded.ShardEngine.export_task` ships
  ``to_state()`` plus the unread journal slice, :func:`run_shard_task`
  rebuilds, updates and re-checkpoints in the worker, and
  :meth:`~repro.core.sharded.ShardEngine.adopt_update` merges the
  returned :class:`~repro.core.sharded.ShardUpdate`, state and component
  clusters back.  Every update therefore exercises checkpoint/resume as
  a real serialization boundary; the state round-trip is O(session
  state), so this pays off when per-shard clustering work dominates.
  The per-component dendrogram cache rides inside the checkpoint both
  ways, so workers splice dirty components
  (:mod:`repro.core.dendro_repair`) instead of re-agglomerating them
  wholesale on every hand-off.

All three produce identical cluster sets — the property tests pin
serial ≡ thread ≡ process ≡ batch ``cluster_settings`` — only timing
and the ``rebuilt``/``reorders_absorbed`` bookkeeping may differ
(process hand-off rebuilds where the in-process engine would absorb a
small reorder in place).

Example — a four-thread session over two applications::

    >>> from repro.core.executors import ThreadShardExecutor
    >>> from repro.core.sharded import ShardedPipeline
    >>> from repro.ttkv.store import TTKV
    >>> store = TTKV()
    >>> pipeline = ShardedPipeline(
    ...     store,
    ...     shard_prefixes=("mail/", "editor/"),
    ...     executor=ThreadShardExecutor(4),
    ... )
    >>> store.record_write("mail/signature", "plain", 10.0)
    >>> store.record_write("mail/font", "mono", 10.0)
    >>> store.record_write("editor/theme", "dark", 10.5)
    >>> [c.sorted_keys() for c in pipeline.update()]
    [['mail/font', 'mail/signature'], ['editor/theme']]

    Per-shard wall times land in the session stats; the slowest shard
    and the overlap factor come for free:

    >>> stats = pipeline.last_stats
    >>> sorted(stats.shard_timings) == sorted(pipeline.shard_ids)
    True
    >>> stats.slowest_shard in pipeline.shard_ids
    True
    >>> stats.parallel_speedup > 0
    True
    >>> pipeline.close()

The executor is caller-owned: close it (or use it as a context manager)
when the pools should shut down; pipelines never close executors, so one
pool can serve many sessions.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from typing import Sequence

from repro.core.sharded import ShardEngine, ShardUpdate
from repro.ttkv.journal import EventJournal, decode_event

#: The executor names understood by :func:`make_executor` (and the
#: ``--executor`` flag of ``python -m repro stream``).
EXECUTOR_NAMES = ("serial", "thread", "process")


def _default_workers() -> int:
    return os.cpu_count() or 1


def _checked_workers(workers: int | None) -> int:
    if workers is None:
        return _default_workers()
    if workers < 1:
        raise ValueError(f"workers must be at least 1, got {workers}")
    return workers


class ShardExecutor:
    """Strategy interface: run a batch of shard engine updates.

    ``map_shards`` must return one :class:`ShardUpdate` per engine, in
    input order, with each engine left holding its post-update state —
    exactly as if ``engine.update()`` had been called serially.
    """

    #: Name the executor answers to in :func:`make_executor`.
    name = "abstract"

    def map_shards(self, engines: Sequence[ShardEngine]) -> list[ShardUpdate]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any pools.  Idempotent; a no-op for poolless strategies."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(ShardExecutor):
    """Update shards one after another in the calling thread."""

    name = "serial"

    def map_shards(self, engines: Sequence[ShardEngine]) -> list[ShardUpdate]:
        return [engine.update() for engine in engines]


def _update_engine(engine: ShardEngine) -> ShardUpdate:
    return engine.update()


class ThreadShardExecutor(ShardExecutor):
    """Update shards concurrently on a thread pool.

    The pool is created lazily on first use, so constructing the
    executor (e.g. in configuration code or a doctest) spawns nothing.
    """

    name = "thread"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = _checked_workers(workers)
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None

    def _live_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="shard-update",
            )
        return self._pool

    def map_shards(self, engines: Sequence[ShardEngine]) -> list[ShardUpdate]:
        engines = list(engines)
        if not engines:
            return []
        return list(self._live_pool().map(_update_engine, engines))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def run_shard_task(
    task: dict,
) -> tuple[ShardUpdate, dict, list[tuple[list[str], list[list[str]]]]]:
    """Worker half of process-mode execution: rebuild, update, re-export.

    ``task`` is a :meth:`~repro.core.sharded.ShardEngine.export_task`
    payload.  The worker materialises the journal slice, restores the
    checkpointed engine over it, runs one update, and returns the
    :class:`ShardUpdate` (with ``seconds`` covering the whole
    rebuild-update-export round), the engine's post-update checkpoint,
    and its component clusters so the parent does not re-agglomerate.
    Runs identically in-process — the serialization boundary is the
    pickling done by the pool, not anything in here.
    """
    started = time.perf_counter()
    journal = EventJournal()
    for entry in task["events"]:
        journal.append_event(decode_event(entry))
    engine = ShardEngine(journal, **task["params"])
    if task["state"] is not None:
        engine.restore(task["state"])
        if task["components"] is not None:
            engine.install_components(task["components"])
    result = engine.update()
    components = engine.components_snapshot()
    state = engine.to_state()
    seconds = time.perf_counter() - started
    return (
        ShardUpdate(stats=result.stats, changed=result.changed, seconds=seconds),
        state,
        components,
    )


class ProcessShardExecutor(ShardExecutor):
    """Update shards on a process pool via the checkpoint boundary.

    Each dirty engine is exported (state + unread journal slice), run by
    :func:`run_shard_task` in a worker process, and merged back with
    :meth:`~repro.core.sharded.ShardEngine.adopt_update`.  True CPU
    parallelism, bought with an O(session state) round-trip per shard per
    update — worthwhile when per-shard clustering work dominates state
    size, e.g. components with hundreds of keys.

    On POSIX the pool uses the ``forkserver`` start method: plain ``fork``
    is unsafe once the parent has live threads (a
    :class:`ThreadShardExecutor` in the same program, an embedding
    application's worker threads — a lock held mid-fork deadlocks the
    child), while forkserver forks from a clean single-threaded server
    process.  Workers re-import ``repro``; the parent's ``sys.path`` is
    propagated, so scripts that bootstrap their import path keep working.
    Elsewhere the default spawn context applies.
    """

    name = "process"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = _checked_workers(workers)
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None

    def _live_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing

            kwargs = {}
            try:
                kwargs["mp_context"] = multiprocessing.get_context("forkserver")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                pass
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers, **kwargs
            )
        return self._pool

    def map_shards(self, engines: Sequence[ShardEngine]) -> list[ShardUpdate]:
        engines = list(engines)
        if not engines:
            return []
        tasks = [engine.export_task() for engine in engines]
        outcomes = list(self._live_pool().map(run_shard_task, tasks))
        return [
            engine.adopt_update(task, *outcome)
            for engine, task, outcome in zip(engines, tasks, outcomes)
        ]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(name: str, workers: int | None = None) -> ShardExecutor:
    """Executor by name — ``serial``, ``thread`` or ``process``.

    ``workers`` defaults to ``os.cpu_count()`` for the pooled strategies
    and is ignored by ``serial``.
    """
    if name == "serial":
        return SerialExecutor()
    if name == "thread":
        return ThreadShardExecutor(workers)
    if name == "process":
        return ProcessShardExecutor(workers)
    raise ValueError(f"unknown executor {name!r}; options: {EXECUTOR_NAMES}")

"""Pluggable shard execution strategies for :class:`ShardedPipeline`.

Shard engines share no mutable state — each owns its journal cursor,
extractor, correlation matrix and cluster cache — so the per-update walk
over dirty shards is embarrassingly parallel.  This module provides the
strategies behind one interface, ``map_shards(engines) ->
list[ShardUpdate]``:

- :class:`SerialExecutor` — update each shard in the calling thread, in
  order.  The reference strategy, and the pipeline's default.
- :class:`ThreadShardExecutor` — a ``concurrent.futures``
  ``ThreadPoolExecutor``.  Engines are updated in place; the GIL bounds
  the wall-clock win for the pure-Python clustering hot path, but shards
  overlap (``UpdateStats.parallel_speedup``), and any future
  GIL-releasing kernel (or a free-threaded interpreter) turns that
  overlap into throughput with no API change.
- :class:`ProcessShardExecutor` — worker processes with *engine
  affinity*.  Each shard is routed to a sticky single-process pool slot
  whose worker caches the restored engine between updates; steady-state
  updates ship only the unread journal slice
  (:meth:`~repro.core.sharded.ShardEngine.export_slice_task`) and get
  back the worker's component clusters, so the per-update payload is
  O(new events + changed clusters), not O(session state).  The full
  checkpoint hand-off — :meth:`~repro.core.sharded.ShardEngine.
  export_task` shipping ``to_state()``, :func:`run_shard_task`
  rebuilding, updating and re-checkpointing in the worker,
  :meth:`~repro.core.sharded.ShardEngine.adopt_update` merging the
  result back — remains as the cold-start and invalidation path: it
  runs when a worker does not hold the engine at the right
  ``(affinity_key, state_epoch, cursor)`` view (first update, evicted
  cache, restore, reorder into the consumed prefix, retune), and is
  what makes every such transition exercise checkpoint/resume as a
  real serialization boundary.  The per-component dendrogram cache
  rides inside the checkpoint, and the sticky worker keeps it live
  across slice updates, so workers splice dirty components
  (:mod:`repro.core.dendro_repair`) instead of re-agglomerating them
  wholesale on every hand-off.

All three produce identical cluster sets — the property tests pin
serial ≡ thread ≡ process ≡ batch ``cluster_settings`` — only timing
and the ``rebuilt``/``reorders_absorbed`` bookkeeping may differ
(process hand-off rebuilds where the in-process engine would absorb a
small reorder in place).

Example — a four-thread session over two applications::

    >>> from repro.core.executors import ThreadShardExecutor
    >>> from repro.core.sharded import ShardedPipeline
    >>> from repro.ttkv.store import TTKV
    >>> store = TTKV()
    >>> pipeline = ShardedPipeline(
    ...     store,
    ...     shard_prefixes=("mail/", "editor/"),
    ...     executor=ThreadShardExecutor(4),
    ... )
    >>> store.record_write("mail/signature", "plain", 10.0)
    >>> store.record_write("mail/font", "mono", 10.0)
    >>> store.record_write("editor/theme", "dark", 10.5)
    >>> [c.sorted_keys() for c in pipeline.update()]
    [['mail/font', 'mail/signature'], ['editor/theme']]

    Per-shard wall times land in the session stats; the slowest shard
    and the overlap factor come for free:

    >>> stats = pipeline.last_stats
    >>> sorted(stats.shard_timings) == sorted(pipeline.shard_ids)
    True
    >>> stats.slowest_shard in pipeline.shard_ids
    True
    >>> stats.parallel_speedup > 0
    True
    >>> pipeline.close()

The executor is caller-owned: close it (or use it as a context manager)
when the pools should shut down; pipelines never close executors, so one
pool can serve many sessions.
"""

from __future__ import annotations

import concurrent.futures
import os
import threading
import time
from collections import OrderedDict
from dataclasses import replace
from typing import Sequence

from repro.core.sharded import ShardEngine, ShardUpdate
from repro.ttkv.columnar import BACKEND_LIST, make_journal
from repro.ttkv.journal import decode_event_batch

#: The executor names understood by :func:`make_executor` (and the
#: ``--executor`` flag of ``python -m repro stream``).
EXECUTOR_NAMES = ("serial", "thread", "process")


def _default_workers() -> int:
    return os.cpu_count() or 1


def _checked_workers(workers: int | None) -> int:
    if workers is None:
        return _default_workers()
    if workers < 1:
        raise ValueError(f"workers must be at least 1, got {workers}")
    return workers


class ShardExecutor:
    """Strategy interface: run a batch of shard engine updates.

    ``map_shards`` must return one :class:`ShardUpdate` per engine, in
    input order, with each engine left holding its post-update state —
    exactly as if ``engine.update()`` had been called serially.
    """

    #: Name the executor answers to in :func:`make_executor`.
    name = "abstract"

    def map_shards(self, engines: Sequence[ShardEngine]) -> list[ShardUpdate]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any pools.  Idempotent; a no-op for poolless strategies."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(ShardExecutor):
    """Update shards one after another in the calling thread."""

    name = "serial"

    def map_shards(self, engines: Sequence[ShardEngine]) -> list[ShardUpdate]:
        return [engine.update() for engine in engines]


def _update_engine(engine: ShardEngine) -> ShardUpdate:
    return engine.update()


class ThreadShardExecutor(ShardExecutor):
    """Update shards concurrently on a thread pool.

    The pool is created lazily on first use, so constructing the
    executor (e.g. in configuration code or a doctest) spawns nothing.
    """

    name = "thread"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = _checked_workers(workers)
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def _live_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        # A fleet driver shares one executor across machines whose
        # updates run concurrently, so first use may race.
        with self._pool_lock:
            if self._pool is None:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="shard-update",
                )
            return self._pool

    def map_shards(self, engines: Sequence[ShardEngine]) -> list[ShardUpdate]:
        engines = list(engines)
        if not engines:
            return []
        return list(self._live_pool().map(_update_engine, engines))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _materialize_engine(task: dict) -> ShardEngine:
    """Rebuild the checkpointed engine over the shipped journal slice."""
    params = dict(task["params"])
    journal = make_journal(params.pop("journal_backend", BACKEND_LIST))
    for event in decode_event_batch(task["events"]):
        journal.append_event(event)
    engine = ShardEngine(journal, **params)
    if task["state"] is not None:
        engine.restore(task["state"])
        if task["components"] is not None:
            engine.install_components(task["components"])
    return engine


def run_shard_task(
    task: dict,
) -> tuple[ShardUpdate, dict, list[tuple[list[str], list[list[str]]]]]:
    """Worker half of a full-state hand-off: rebuild, update, re-export.

    ``task`` is a :meth:`~repro.core.sharded.ShardEngine.export_task`
    payload.  The worker materialises the journal slice, restores the
    checkpointed engine over it, runs one update, and returns the
    :class:`ShardUpdate`, the engine's post-update checkpoint, and its
    component clusters so the parent does not re-agglomerate.
    ``ShardUpdate.seconds`` covers only the engine's own update — the
    same quantity every other executor reports — while the journal
    materialisation, restore and re-export land in
    ``ShardUpdate.handoff_seconds``.  Runs identically in-process — the
    serialization boundary is the pickling done by the pool, not
    anything in here.
    """
    started = time.perf_counter()
    engine = _materialize_engine(task)
    result = engine.update()
    components = engine.components_snapshot()
    state = engine.to_state()
    handoff = time.perf_counter() - started - result.seconds
    return (
        replace(result, handoff_seconds=max(handoff, 0.0)),
        state,
        components,
    )


#: Worker-side engine cache for :class:`ProcessShardExecutor` affinity:
#: ``affinity_key -> (state_epoch, journal position, engine)``.  Lives in
#: the worker process; bounded LRU so a long-lived pool serving many
#: sessions cannot grow without limit.
_WORKER_ENGINES: "OrderedDict[str, tuple[int, int, ShardEngine]]" = OrderedDict()
_WORKER_CACHE_LIMIT = 32


def _cache_engine(key: str, epoch: int, position: int, engine: ShardEngine) -> None:
    _WORKER_ENGINES.pop(key, None)
    _WORKER_ENGINES[key] = (epoch, position, engine)
    while len(_WORKER_ENGINES) > _WORKER_CACHE_LIMIT:
        _WORKER_ENGINES.popitem(last=False)


def run_affinity_task(task: dict) -> dict:
    """Worker entry point for :class:`ProcessShardExecutor`.

    Dispatches on ``task["mode"]``:

    - ``"slice"`` (:meth:`~repro.core.sharded.ShardEngine.
      export_slice_task`): applies the unread journal slice to the engine
      this worker cached earlier.  The cached engine must sit at exactly
      the ``(state epoch, cursor position)`` view the parent exported
      against; otherwise ``{"miss": True}`` is returned and the parent
      falls back to a full task.  A hit returns only the
      :class:`ShardUpdate` and the component clusters — no checkpoint
      crosses the boundary in either direction.
    - ``"full"`` (:meth:`~repro.core.sharded.ShardEngine.export_task`):
      delegates to :func:`run_shard_task` semantics and additionally
      caches the updated engine under the task's affinity tag, arming the
      slice fast path for the next update.
    """
    affinity = task["affinity"]
    key = affinity["key"]
    started = time.perf_counter()
    if task["mode"] == "slice":
        cached = _WORKER_ENGINES.get(key)
        if (
            cached is None
            or cached[0] != affinity["epoch"]
            or cached[1] != task["base"]
        ):
            return {"miss": True}
        engine = cached[2]
        for event in decode_event_batch(task["events"]):
            engine.journal.append_event(event)
        result = engine.update()
        components = engine.components_snapshot()
        _cache_engine(key, affinity["epoch"], task["result_position"], engine)
        handoff = time.perf_counter() - started - result.seconds
        return {
            "result": replace(result, handoff_seconds=max(handoff, 0.0)),
            "components": components,
        }
    engine = _materialize_engine(task)
    result = engine.update()
    components = engine.components_snapshot()
    state = engine.to_state()
    _cache_engine(key, affinity["epoch"], task["result_position"], engine)
    handoff = time.perf_counter() - started - result.seconds
    return {
        "result": replace(result, handoff_seconds=max(handoff, 0.0)),
        "state": state,
        "components": components,
    }


class ProcessShardExecutor(ShardExecutor):
    """Update shards on worker processes with sticky engine affinity.

    Each engine is pinned (round-robin) to one of ``workers``
    single-process pool *slots*; the slot's worker caches the engine it
    restored, keyed by ``(affinity_key, state_epoch, cursor)``.  When the
    parent engine still sits exactly where the worker last left it, only
    the unread journal slice is shipped (:meth:`~repro.core.sharded.
    ShardEngine.export_slice_task`) and only the update result plus
    changed component clusters come back — O(new events), true CPU
    parallelism with none of the per-update O(session state) round-trip
    that made process mode slower than serial.  Anything that moves the
    parent engine without the worker seeing it — a restore, a reorder
    into the consumed prefix, a retune, a serial update under a swapped
    executor, a worker cache eviction — bumps the engine's
    ``state_epoch`` or moves its cursor, the view check fails (worker
    side it reports a miss), and the update falls back to the full
    checkpoint hand-off (:func:`run_shard_task` semantics), which
    re-arms the fast path.

    On POSIX the slots use the ``forkserver`` start method: plain
    ``fork`` is unsafe once the parent has live threads (a
    :class:`ThreadShardExecutor` in the same program, an embedding
    application's worker threads — a lock held mid-fork deadlocks the
    child), while forkserver forks from a clean single-threaded server
    process.  Workers re-import ``repro``; the parent's ``sys.path`` is
    propagated, so scripts that bootstrap their import path keep working.
    Elsewhere the default spawn context applies.
    """

    name = "process"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = _checked_workers(workers)
        self._slots: list[concurrent.futures.ProcessPoolExecutor | None] = (
            [None] * self.workers
        )
        self._slot_of: dict[str, int] = {}
        #: (state_epoch, journal position) each slot's worker holds per
        #: affinity key — the parent-side half of the view check.
        self._views: dict[str, tuple[int, int]] = {}

    def _slot_pool(self, slot: int) -> concurrent.futures.ProcessPoolExecutor:
        pool = self._slots[slot]
        if pool is None:
            import multiprocessing

            kwargs = {}
            try:
                kwargs["mp_context"] = multiprocessing.get_context("forkserver")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                pass
            pool = concurrent.futures.ProcessPoolExecutor(max_workers=1, **kwargs)
            self._slots[slot] = pool
        return pool

    def _export(self, engine: ShardEngine) -> dict:
        view = self._views.get(engine.affinity_key)
        if (
            view is not None
            and view == (engine.state_epoch, engine.cursor_position)
            and engine.can_export_slice()
        ):
            return engine.export_slice_task()
        return engine.export_task()

    def _reset_slot(self, slot: int) -> None:
        """Discard a slot's (broken) pool and its workers' cached views."""
        pool = self._slots[slot]
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
            self._slots[slot] = None
        for key, key_slot in self._slot_of.items():
            if key_slot == slot:
                self._views.pop(key, None)

    def _recovering_result(
        self, engine: ShardEngine, slot: int, task: dict, future
    ) -> tuple[dict, dict]:
        """``(task, outcome)`` — surviving one worker death per engine.

        A killed worker process breaks its single-process pool: every
        pending/future submit raises ``BrokenProcessPool``.  The slot's
        pool is recreated and the engine's *full* task (the fresh worker
        holds no cached engine, so a slice would only miss) resubmitted
        once; a second death on the retry propagates.
        """
        from concurrent.futures.process import BrokenProcessPool

        try:
            return task, future.result()
        except BrokenProcessPool:
            self._reset_slot(slot)
            task = engine.export_task()
            outcome = (
                self._slot_pool(slot).submit(run_affinity_task, task).result()
            )
            return task, outcome

    def map_shards(self, engines: Sequence[ShardEngine]) -> list[ShardUpdate]:
        from concurrent.futures.process import BrokenProcessPool

        engines = list(engines)
        if not engines:
            return []
        submissions = []
        for engine in engines:
            slot = self._slot_of.setdefault(
                engine.affinity_key, len(self._slot_of) % self.workers
            )
            task = self._export(engine)
            try:
                future = self._slot_pool(slot).submit(run_affinity_task, task)
            except BrokenProcessPool:
                # the slot's worker died since the last update: recreate
                # the pool and hand the fresh worker the full checkpoint
                self._reset_slot(slot)
                task = engine.export_task()
                future = self._slot_pool(slot).submit(run_affinity_task, task)
            submissions.append((engine, slot, task, future))
        results = []
        for engine, slot, task, future in submissions:
            task, outcome = self._recovering_result(engine, slot, task, future)
            if outcome.get("miss"):
                # the worker no longer holds the engine at the exported
                # view (evicted, or a restarted pool): re-arm it with the
                # full checkpoint hand-off on the same slot
                task = engine.export_task()
                outcome = (
                    self._slot_pool(slot).submit(run_affinity_task, task).result()
                )
            self._views[engine.affinity_key] = (
                task["affinity"]["epoch"],
                task["result_position"],
            )
            if task["mode"] == "slice":
                results.append(
                    engine.adopt_slice(task, outcome["result"], outcome["components"])
                )
            else:
                results.append(
                    engine.adopt_update(
                        task,
                        outcome["result"],
                        outcome["state"],
                        outcome["components"],
                    )
                )
        return results

    def close(self) -> None:
        for slot, pool in enumerate(self._slots):
            if pool is not None:
                pool.shutdown(wait=True)
                self._slots[slot] = None
        self._slot_of.clear()
        self._views.clear()


def make_executor(name: str, workers: int | None = None) -> ShardExecutor:
    """Executor by name — ``serial``, ``thread`` or ``process``.

    ``workers`` defaults to ``os.cpu_count()`` for the pooled strategies
    and is ignored by ``serial``.
    """
    if name == "serial":
        return SerialExecutor()
    if name == "thread":
        return ThreadShardExecutor(workers)
    if name == "process":
        return ProcessShardExecutor(workers)
    raise ValueError(f"unknown executor {name!r}; options: {EXECUTOR_NAMES}")

"""End-to-end **batch** clustering pipeline: TTKV -> ClusterSet.

This is the one-shot entry point for the paper's contribution::

    from repro import cluster_settings
    clusters = cluster_settings(ttkv)                 # paper defaults
    clusters = cluster_settings(ttkv, window=30.0,    # tuned, as for
                                correlation_threshold=1.0)  # error #2

For clustering that runs continuously alongside logging, use
:class:`repro.core.incremental.IncrementalPipeline`, which produces
identical clusters while consuming only newly appended events per update;
this batch function is kept as the independent reference implementation the
incremental path is property-tested against.
"""

from __future__ import annotations

from repro.core.clustering import LINKAGE_COMPLETE, flat_clusters
from repro.core.cluster_model import Cluster, ClusterSet
from repro.core.correlation import CorrelationMatrix
from repro.core.windowing import (
    extract_fixed_buckets,
    extract_write_groups,
    key_group_sets,
)
from repro.ttkv.store import TTKV

#: The paper's defaults: 1-second sliding window, correlation threshold 2.
DEFAULT_WINDOW = 1.0
DEFAULT_CORRELATION_THRESHOLD = 2.0


def cluster_settings(
    store: TTKV,
    window: float = DEFAULT_WINDOW,
    correlation_threshold: float = DEFAULT_CORRELATION_THRESHOLD,
    linkage: str = LINKAGE_COMPLETE,
    key_filter: str | None = None,
    grouping: str = "sliding",
) -> ClusterSet:
    """Cluster an application's configuration settings from its TTKV trace.

    Parameters
    ----------
    store:
        The TTKV holding the recorded modification history.
    window:
        Sliding time window in seconds (default 1, the paper's minimum —
        also the collector's timestamp precision).
    correlation_threshold:
        Stop clustering once the correlation between clusters drops below
        this value; 2 clusters only keys *always* modified together.
    linkage:
        ``complete`` (paper), ``single`` or ``average`` (ablations).
    key_filter:
        Optional prefix; only keys starting with it are clustered.  Used to
        restrict a shared trace to a single application's settings.
    grouping:
        ``sliding`` (paper) or ``buckets`` (ablation).

    Keys that were never modified are excluded — they cannot cause a
    configuration error (§III-A).
    """
    events = store.write_events()
    if key_filter is not None:
        events = [e for e in events if e[1].startswith(key_filter)]
    if grouping == "sliding":
        groups = extract_write_groups(events, window)
    elif grouping == "buckets":
        groups = extract_fixed_buckets(events, window)
    else:
        raise ValueError(f"unknown grouping {grouping!r}")
    key_groups = key_group_sets(groups)
    matrix = CorrelationMatrix(key_groups)
    key_sets = flat_clusters(
        matrix, correlation_threshold=correlation_threshold, linkage=linkage
    )
    return ClusterSet.from_key_sets(
        key_sets, window=window, correlation_threshold=correlation_threshold
    )


def singleton_clusters(store: TTKV, key_filter: str | None = None) -> ClusterSet:
    """The Ocasta-NoClust baseline: every modified key is its own cluster.

    This is the comparison system of Table IV — it "rolls back a single
    configuration setting at a time", so it cannot fix errors that require
    changing several settings together.
    """
    keys = store.modified_keys()
    if key_filter is not None:
        keys = [k for k in keys if k.startswith(key_filter)]
    key_sets = [frozenset((key,)) for key in sorted(keys)]
    return ClusterSet.from_key_sets(
        key_sets, window=0.0, correlation_threshold=2.0
    )


def rebuild_cluster(cluster_set: ClusterSet, keys: frozenset[str]) -> Cluster:
    """Utility for tests/tools: find the cluster equal to ``keys``."""
    for cluster in cluster_set:
        if cluster.keys == keys:
            return cluster
    raise LookupError(f"no cluster with keys {sorted(keys)}")

"""The repair engine: drive the search, de-duplicate screenshots, stop at a fix.

This module is deliberately substrate-agnostic.  It consumes:

- a candidate stream (from :mod:`repro.core.search`),
- a trial executor — ``execute_trial(plan)`` runs the user-recorded trial
  in a sandbox with the given rollback plan applied and returns a hashable
  screenshot (``plan=None`` reproduces the erroneous state),
- a fix oracle — ``is_fixed(screenshot)`` is the (simulated) user looking
  at the gallery,
- a simulated clock and per-trial cost model for the reported times.

The concrete wiring of sandboxes, replay and rendering lives in
:mod:`repro.repair.controller`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable

from repro.common.clock import SimClock
from repro.core.search import Candidate
from repro.ttkv.snapshot import RollbackPlan

TrialExecutor = Callable[[RollbackPlan | None], Hashable]
FixOracle = Callable[[Hashable], bool]
TrialCostModel = Callable[[Candidate], float]


@dataclass(frozen=True)
class GalleryEntry:
    """A unique screenshot the user may be asked to examine."""

    candidate: Candidate
    screenshot: Hashable


@dataclass
class RepairOutcome:
    """Everything Table IV reports about one repair run."""

    fixed: bool = False
    fix_candidate: Candidate | None = None
    trials_to_fix: int | None = None
    total_trials: int = 0
    time_to_fix: float | None = None
    total_time: float = 0.0
    gallery: list[GalleryEntry] = field(default_factory=list)
    #: gallery size when the fix appeared; what the user examined before
    #: stopping the search (an exhaustive run keeps collecting afterwards)
    screens_at_fix: int | None = None

    @property
    def unique_screenshots(self) -> int:
        """Screenshots the user examined (Table IV's 'Screens').

        Up to and including the fixing screenshot when the search
        succeeded; everything recorded when it did not.
        """
        if self.screens_at_fix is not None:
            return self.screens_at_fix
        return len(self.gallery)

    @property
    def total_unique_screenshots(self) -> int:
        """All unique screenshots recorded, including post-fix ones
        collected by an exhaustive search."""
        return len(self.gallery)

    @property
    def fix_plan(self) -> RollbackPlan | None:
        if self.fix_candidate is None:
            return None
        return self.fix_candidate.version.rollback_plan()


class RepairEngine:
    """Runs trials over search candidates until a fix appears.

    Parameters
    ----------
    execute_trial:
        Sandboxed trial executor (see module docstring).
    is_fixed:
        Oracle deciding whether a screenshot shows a fixed application.
    clock:
        Simulated clock advanced by ``trial_cost`` per executed trial.
    trial_cost:
        Seconds one trial execution costs; either a constant or a callable
        of the candidate (app start-up dominates in the paper, so the
        default concrete models are per-application constants).
    """

    def __init__(
        self,
        execute_trial: TrialExecutor,
        is_fixed: FixOracle,
        clock: SimClock | None = None,
        trial_cost: float | TrialCostModel = 10.0,
    ) -> None:
        self.execute_trial = execute_trial
        self.is_fixed = is_fixed
        self.clock = clock if clock is not None else SimClock()
        if callable(trial_cost):
            self._trial_cost: TrialCostModel = trial_cost
        else:
            constant = float(trial_cost)
            if constant < 0:
                raise ValueError("trial cost cannot be negative")
            self._trial_cost = lambda _candidate: constant

    def run(
        self,
        candidates: Iterable[Candidate],
        exhaustive: bool = False,
    ) -> RepairOutcome:
        """Execute the search.

        With ``exhaustive=False`` the engine stops at the first fixing
        candidate.  With ``exhaustive=True`` it keeps executing trials to
        the end of the candidate stream (recording the first fix), which is
        how Table IV's "time to search all the clusters" column is
        measured.
        """
        start_time = self.clock.now()
        outcome = RepairOutcome()
        # The erroneous screenshot: run the trial once with no rollback.
        # "Ocasta discards the screenshot if it is identical to either the
        # erroneous screenshot or any previous screenshots."
        erroneous = self.execute_trial(None)
        seen: set[Hashable] = {erroneous}

        for candidate in candidates:
            self.clock.advance(self._trial_cost(candidate))
            outcome.total_trials += 1
            screenshot = self.execute_trial(candidate.version.rollback_plan())
            if screenshot in seen:
                continue
            seen.add(screenshot)
            outcome.gallery.append(
                GalleryEntry(candidate=candidate, screenshot=screenshot)
            )
            if not outcome.fixed and self.is_fixed(screenshot):
                outcome.fixed = True
                outcome.fix_candidate = candidate
                outcome.trials_to_fix = outcome.total_trials
                outcome.time_to_fix = self.clock.elapsed_since(start_time)
                outcome.screens_at_fix = len(outcome.gallery)
                if not exhaustive:
                    break

        outcome.total_time = self.clock.elapsed_since(start_time)
        return outcome


def apply_permanent_fix(outcome: RepairOutcome, store: Any) -> None:
    """Roll the live configuration store back to the fixing version.

    "Ocasta permanently rolls back the cluster to its corresponding value
    and returns back to recording mode."  ``store`` is any object with
    ``set``/``delete`` (every :class:`~repro.stores.base.ConfigStore`).
    """
    plan = outcome.fix_plan
    if plan is None:
        raise ValueError("outcome has no fix to apply")
    plan.apply_to(store)

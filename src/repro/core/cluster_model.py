"""Clusters of configuration settings and their version histories.

A :class:`Cluster` is a set of related keys identified by the clustering
pipeline.  A :class:`ClusterVersion` is a historical joint state of those
keys, reconstructed from the TTKV: the repair search rolls back *an entire
cluster at a time* to one of these versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.exceptions import OcastaError
from repro.ttkv.snapshot import RollbackPlan
from repro.ttkv.store import TTKV


@dataclass(frozen=True)
class Cluster:
    """An identified cluster of related configuration settings."""

    cluster_id: int
    keys: frozenset[str]

    def __post_init__(self) -> None:
        if not self.keys:
            raise OcastaError("a cluster must contain at least one key")

    def __len__(self) -> int:
        return len(self.keys)

    def __contains__(self, key: str) -> bool:
        return key in self.keys

    def is_singleton(self) -> bool:
        return len(self.keys) == 1

    def sorted_keys(self) -> list[str]:
        return sorted(self.keys)


@dataclass(frozen=True)
class ClusterVersion:
    """Joint state of a cluster's keys as of one modification timestamp.

    ``values`` maps every member key to its live value at ``timestamp``
    (possibly the DELETED/MISSING sentinels for keys that did not exist).
    """

    timestamp: float
    values: dict[str, Any] = field(hash=False)

    def rollback_plan(self) -> RollbackPlan:
        """The assignments that restore the cluster to this version."""
        return RollbackPlan(timestamp=self.timestamp, assignments=dict(self.values))


def cluster_versions(
    store: TTKV,
    cluster: Cluster,
    start: float | None = None,
    end: float | None = None,
) -> list[ClusterVersion]:
    """Chronological (oldest-first) distinct versions of a cluster.

    A version point is created at every distinct timestamp at which any
    member key was modified within ``[start, end]``; the version captures
    the live values of *all* member keys at that instant.  Consecutive
    identical states are coalesced (a modification that rewrote the same
    value creates no new version).

    Keys absent from the TTKV contribute nothing — a cluster may contain a
    key the store never saw modified only in pathological caller-constructed
    cases, and the version then simply tracks the remaining keys.
    """
    timestamps: set[float] = set()
    tracked: list[str] = []
    pre_start = float("-inf")
    for key in cluster.sorted_keys():
        if key not in store:
            continue
        tracked.append(key)
        record = store.record_for(key)
        for entry in record.versions_between(start, end):
            timestamps.add(entry.timestamp)
        if start is not None:
            for entry in record.versions_between(None, start):
                if entry.timestamp < start:
                    pre_start = max(pre_start, entry.timestamp)
    if not tracked:
        return []
    if start is not None and pre_start > float("-inf"):
        # The cluster's state *as of the start bound* is itself a rollback
        # candidate: the user asserts the error was introduced no earlier
        # than ``start``, so the newest pre-start version is still good.
        timestamps.add(pre_start)

    versions: list[ClusterVersion] = []
    for timestamp in sorted(timestamps):
        values = {key: store.value_at(key, timestamp) for key in tracked}
        if versions and versions[-1].values == values:
            continue
        versions.append(ClusterVersion(timestamp=timestamp, values=values))
    return versions


def cluster_modification_count(store: TTKV, cluster: Cluster) -> int:
    """How many times the cluster was modified over the recorded history.

    Counted as distinct modification timestamps touching any member key —
    a write group that updates three members at once is one modification of
    the cluster, matching the paper's sort criterion ("the number of times
    they have been modified").
    """
    timestamps: set[float] = set()
    for key in cluster.keys:
        if key in store:
            for entry in store.record_for(key).history:
                timestamps.add(entry.timestamp)
    return len(timestamps)


def cluster_last_modified(store: TTKV, cluster: Cluster) -> float:
    """Timestamp of the most recent modification to any member key."""
    latest = float("-inf")
    for key in cluster.keys:
        if key in store:
            record = store.record_for(key)
            if record.history:
                latest = max(latest, record.last_modified())
    return latest


class ClusterSet:
    """The output of the clustering pipeline for one application trace.

    Holds the clusters, reverse key lookup, and the parameters they were
    produced with — everything Table II and the repair tool consume.
    """

    def __init__(
        self,
        clusters: list[Cluster],
        window: float,
        correlation_threshold: float,
    ) -> None:
        self.window = window
        self.correlation_threshold = correlation_threshold
        self._clusters = list(clusters)
        self._by_key: dict[str, Cluster] = {}
        for cluster in self._clusters:
            for key in cluster.keys:
                if key in self._by_key:
                    raise OcastaError(
                        f"key {key!r} appears in more than one cluster"
                    )
                self._by_key[key] = cluster

    @classmethod
    def from_key_sets(
        cls,
        key_sets: list[frozenset[str]],
        window: float,
        correlation_threshold: float,
    ) -> "ClusterSet":
        clusters = [
            Cluster(cluster_id=index, keys=keys)
            for index, keys in enumerate(key_sets)
        ]
        return cls(clusters, window, correlation_threshold)

    def __iter__(self) -> Iterator[Cluster]:
        return iter(self._clusters)

    def __len__(self) -> int:
        return len(self._clusters)

    @property
    def clusters(self) -> list[Cluster]:
        return list(self._clusters)

    def cluster_of(self, key: str) -> Cluster:
        try:
            return self._by_key[key]
        except KeyError:
            raise OcastaError(f"key {key!r} is not in any cluster") from None

    def __contains__(self, key: str) -> bool:
        return key in self._by_key

    def keys(self) -> list[str]:
        return list(self._by_key)

    def multi_clusters(self) -> list[Cluster]:
        """Clusters with more than one setting (Table II's numerator pool)."""
        return [c for c in self._clusters if len(c) > 1]

    def singletons(self) -> list[Cluster]:
        return [c for c in self._clusters if len(c) == 1]

    def average_size(self, include_singletons: bool = False) -> float:
        """Mean cluster size (Fig. 3's y-axis, over multi-key clusters).

        Fig. 3 of the paper plots averages in the 3.5–4.5 range while the
        overall keys/clusters ratio is ~1.9, so the figure's average is
        over clusters that actually group settings; ``include_singletons``
        gives the other convention.
        """
        pool = self._clusters if include_singletons else self.multi_clusters()
        if not pool:
            return 0.0
        return sum(len(c) for c in pool) / len(pool)

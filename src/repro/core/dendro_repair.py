"""Sub-component dendrogram repair: splice instead of re-agglomerating.

The streaming engines confine every update to the connected components a
write group dirtied, but until this module a dirty component was still
re-agglomerated *wholesale* — O(n²) in the component size — even when the
update touched two keys of a three-hundred-key component.  The hot-key
component therefore dominated what remained of incremental update cost.

Splicing exploits the shape of the damage.  A dendrogram is a merge list
in non-decreasing distance order, and an update that dirties keys ``D``
can only change pairwise distances of pairs with at least one key in
``D`` (the correlation of a clean pair depends only on its own group
counts and intersection, all untouched).  Every merge strictly below

- the smallest *new* distance of any pair involving a dirty key, and
- the distance of the first cached merge whose members intersect ``D``

is still exactly what a from-scratch run would do: below that line no
cluster containing a dirty key can form, so the agglomeration evolves on
clean clusters with unchanged distances.  :func:`splice_dendrogram`
keeps that merge prefix verbatim, rebuilds the surviving partition, and
re-agglomerates only the remaining super-nodes
(:func:`~repro.core.clustering.agglomerate_clusters` seeds the heap with
multi-key clusters and derived inter-cluster linkage distances instead of
singletons).  Merges at exactly the splice line are conservatively
discarded — distance ties are where HAC is order-sensitive, so they are
re-derived rather than trusted.

The resulting *clusters* are bit-identical to a wholesale
re-agglomeration at every threshold — agglomeration tie-breaks are
content-based, so continuing from the spliced state replays the merges a
full run performs; the property tests pin spliced ≡ wholesale ≡ batch.
One cosmetic caveat: when an update bridges two cached components that
each hold a merge at the *same* distance, the spliced merge list keeps
those tied merges grouped per source cache while a from-scratch run may
interleave them — same merge set, same distances, identical ``cut`` at
every threshold, and deterministic either way (caches are consumed in
sorted order), but not always list-equal.  Whenever the cached material
cannot be proven valid (components shrank after a retraction, a cached
dendrogram straddles the component boundary, or the spliced merge list
fails validation) the repair falls back to a wholesale rebuild — the
fallback is a performance event, never a correctness one.

Splicing is exact for ``complete`` and ``single`` linkage, whose
Lance–Williams updates are pure ``max``/``min`` over the base distances.
``average`` linkage accumulates floating-point rounding along the merge
path, so a seeded continuation can differ from a wholesale run in the
last ulp — rather than weaken the bit-identical guarantee, average
linkage always takes the rebuild path.

Example — a 120-key component, its farthest key touched::

    >>> from repro.core.correlation import CorrelationMatrix
    >>> matrix = CorrelationMatrix(
    ...     {f"k{i:03d}": set(range(max(i, 1), 120)) for i in range(120)}
    ... )
    >>> component = frozenset(matrix.keys)
    >>> cached = build_dendrogram(matrix, component, "complete")
    >>> matrix.observe_group(500, ["k119"])     # dirties one key
    >>> outcome = splice_dendrogram(
    ...     matrix, component, {"k119"}, [cached], "complete"
    ... )
    >>> outcome.spliced, outcome.merges_reused, outcome.merges_recomputed
    (True, 114, 5)
    >>> outcome.dendrogram.merges == build_dendrogram(
    ...     matrix, component, "complete"
    ... ).merges
    True
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core import hac_kernel
from repro.core.clustering import LINKAGE_AVERAGE, agglomerate_clusters
from repro.core.correlation import CorrelationMatrix, correlation_to_distance
from repro.core.dendrogram import Dendrogram, Merge
from repro.core.hac_kernel import (
    KERNEL_NUMPY,
    KERNEL_PYTHON,
    require_numpy,
    resolve_kernel,
)
from repro.core.unionfind import UnionFind

#: Repair every dirty component by splicing its cached dendrogram (the
#: default; falls back to a wholesale rebuild when splicing is unsafe).
REPAIR_SPLICE = "splice"
#: Always re-agglomerate dirty components from singletons (the escape
#: hatch; what every engine did before spliced repair existed).
REPAIR_REBUILD = "rebuild"
#: The repair modes understood by the engines and ``--repair-mode``.
REPAIR_MODES = (REPAIR_SPLICE, REPAIR_REBUILD)


@dataclass(frozen=True)
class SeedDistanceCache:
    """Inter-seed linkage distances from a component's previous repair.

    ``seeds`` is the surviving-cluster partition that repair
    re-agglomerated (sorted by smallest key) and ``matrix`` its dense
    ``(k, k)`` linkage-distance array (the :func:`~repro.core.hac_kernel.
    seed_matrix` output, *before* the merge loop mutated its copy).  On
    the next repair of the same component, rows of seeds that survived
    unchanged and contain no dirty key are copied over instead of being
    re-reduced from the distance block — repeat repairs touch only the
    affected rows.  Runtime-only derived data: it is never checkpointed
    (a resumed session re-derives it on first repair).
    """

    linkage: str
    seeds: tuple[frozenset[str], ...]
    matrix: "object"


@dataclass(frozen=True)
class SpliceOutcome:
    """One repaired component: its dendrogram plus the work accounting.

    ``merges_reused`` counts cached merges kept verbatim (the spliced
    prefix); ``merges_recomputed`` counts merges the seeded agglomeration
    re-derived.  ``spliced`` says whether the splice path actually ran —
    ``False`` means a wholesale rebuild (requested, no usable cache, or a
    safety fallback).  ``kernel`` records which implementation derived
    the recomputed merges (``"numpy"`` or ``"python"``); ``seed_cache``
    carries the refreshed inter-seed distances for the next repair of
    this component (numpy splice path only).
    """

    dendrogram: Dendrogram
    merges_reused: int
    merges_recomputed: int
    spliced: bool
    kernel: str = KERNEL_PYTHON
    seed_cache: SeedDistanceCache | None = field(default=None, compare=False)


def check_repair_mode(mode: str) -> str:
    """Validate a repair mode name (returns it unchanged)."""
    if mode not in REPAIR_MODES:
        raise ValueError(f"unknown repair mode {mode!r}; options: {REPAIR_MODES}")
    return mode


def build_dendrogram(
    matrix: CorrelationMatrix,
    component: frozenset[str] | set[str],
    linkage: str,
    *,
    kernel: str = KERNEL_PYTHON,
) -> Dendrogram:
    """Wholesale agglomeration of one component into a dendrogram.

    The rebuild half of every repair: also the fallback target whenever
    :func:`splice_dendrogram` cannot prove its cache valid.
    """
    component = frozenset(component)
    if len(component) < 2:
        return Dendrogram(component, [])
    merges = agglomerate_clusters(
        matrix,
        [frozenset((key,)) for key in sorted(component)],
        linkage,
        kernel=kernel,
    )
    merges.sort(key=lambda merge: merge.distance)
    return Dendrogram(component, merges)


def rebuild_outcome(
    matrix: CorrelationMatrix,
    component: frozenset[str] | set[str],
    linkage: str,
    *,
    kernel: str = KERNEL_PYTHON,
) -> SpliceOutcome:
    """A wholesale rebuild packaged as a :class:`SpliceOutcome`."""
    dendrogram = build_dendrogram(matrix, component, linkage, kernel=kernel)
    return SpliceOutcome(
        dendrogram=dendrogram,
        merges_reused=0,
        merges_recomputed=len(dendrogram.merges),
        spliced=False,
        kernel=resolve_kernel(kernel, linkage, len(frozenset(component))),
    )


def first_affected_distance(
    matrix: CorrelationMatrix,
    component: frozenset[str],
    dirty: Iterable[str],
) -> float:
    """Smallest current distance of any in-component pair touching ``dirty``.

    This is the floor below which no cluster containing a dirty key can
    form in a fresh agglomeration: every linkage criterion in use rates a
    merge involving a dirty singleton at one of these pair distances or
    higher.  Returns ``inf`` when no dirty key has in-component neighbours.
    """
    floor = math.inf
    for key in dirty:
        if key not in component or key not in matrix:
            continue
        for other in matrix.neighbors(key):
            if other in component:
                d = correlation_to_distance(matrix.correlation_of(key, other))
                if d < floor:
                    floor = d
    return floor


def surviving_clusters(
    component: frozenset[str], merges: Sequence[Merge]
) -> list[frozenset[str]]:
    """The partition of ``component`` after applying a merge prefix.

    Sorted by each cluster's smallest key — the seed order
    :func:`~repro.core.clustering.agglomerate_clusters` requires.
    """
    forest = UnionFind()
    for key in component:
        forest.add(key)
    for merge in merges:
        forest.union(next(iter(merge.left)), next(iter(merge.right)))
    return sorted((frozenset(c) for c in forest.components()), key=min)


def splice_dendrogram(
    matrix: CorrelationMatrix,
    component: frozenset[str] | set[str],
    dirty: Iterable[str],
    cached: Sequence[Dendrogram],
    linkage: str,
    *,
    kernel: str = KERNEL_PYTHON,
    seed_caches: Sequence[SeedDistanceCache] = (),
) -> SpliceOutcome:
    """Repair one dirty component by splicing its cached merge history.

    Parameters
    ----------
    matrix:
        The *current* (post-update) correlation matrix.
    component:
        The component's current key set (a connected component of
        ``matrix``'s finite-distance graph).
    dirty:
        Keys whose correlations may have changed in the update (the
        matrix's dirty set).  Keys of ``component`` not covered by any
        cached dendrogram are treated as dirty implicitly — a brand-new
        key always arrives via a touched group.
    cached:
        Dendrograms cached *before* the update for the sub-components
        that grew into ``component`` — one when the component merely
        changed internally, several when the update bridged components.
        Each must cover a disjoint subset of ``component``.
    linkage:
        The linkage criterion (must match the cached dendrograms').
    kernel:
        Implementation selector (:mod:`repro.core.hac_kernel`): when it
        resolves to ``"numpy"`` for this component, the inter-seed
        distances come from vectorized reductions over the component's
        cached distance block — optionally reusing rows from
        ``seed_caches`` (previous repairs' :class:`SeedDistanceCache`
        records) so only rows of seeds touching dirty keys are
        re-reduced — and the merge loop runs on the array kernel.
        Results are bit-identical across kernels.

    Returns a :class:`SpliceOutcome` whose dendrogram is bit-identical to
    :func:`build_dendrogram` on the same inputs.  Falls back to the
    wholesale rebuild (``spliced=False``) when the cache is unusable:
    a cached dendrogram straddling the component boundary (a retraction
    shrank components), overlapping caches, or a spliced merge list that
    fails the dendrogram's ordering validation.

    >>> from repro.core.correlation import CorrelationMatrix
    >>> matrix = CorrelationMatrix({"a": {0}, "b": {0}, "c": {0, 1}})
    >>> old = build_dendrogram(matrix, frozenset("abc"), "complete")
    >>> matrix.observe_group(9, ["c"])        # only c's group count moves
    >>> outcome = splice_dendrogram(
    ...     matrix, frozenset("abc"), {"c"}, [old], "complete"
    ... )
    >>> outcome.spliced, outcome.merges_reused, outcome.merges_recomputed
    (True, 1, 1)
    """
    component = frozenset(component)
    if linkage == LINKAGE_AVERAGE:
        # Lance–Williams average linkage rounds differently along a
        # seeded path than along the singleton path (nested weighted
        # means vs one mean) — the results can differ in the last ulp.
        # Bit-identical beats fast here.
        return rebuild_outcome(matrix, component, linkage, kernel=kernel)
    affected = {key for key in dirty if key in component}

    old_merges: list[Merge] = []
    covered: set[str] = set()
    for dendrogram in cached:
        items = dendrogram.items
        if not items <= component or items & covered:
            # A cached dendrogram holds keys outside the component (it
            # shrank — retraction territory) or two caches overlap; the
            # prefix argument no longer applies.
            return rebuild_outcome(matrix, component, linkage, kernel=kernel)
        covered |= items
        old_merges.extend(dendrogram.merges)
    # Keys no cache knows about joined the component in this update.
    affected |= component - covered
    if not affected or not old_merges:
        return rebuild_outcome(matrix, component, linkage, kernel=kernel)

    splice_at = first_affected_distance(matrix, component, affected)
    for merge in old_merges:
        if merge.distance >= splice_at:
            continue
        if not affected.isdisjoint(merge.members):
            splice_at = merge.distance
    old_merges.sort(key=lambda merge: merge.distance)
    prefix = [
        merge
        for merge in old_merges
        if merge.distance < splice_at
        and not math.isclose(merge.distance, splice_at)
        and affected.isdisjoint(merge.members)
    ]

    seeds = surviving_clusters(component, prefix)
    resolved = resolve_kernel(kernel, linkage, len(component))
    seed_cache: SeedDistanceCache | None = None
    if resolved == KERNEL_NUMPY and len(seeds) > 1:
        block = matrix.component_distance_block(component)
        seed_square = _seed_matrix_with_reuse(
            block, seeds, affected, seed_caches, linkage
        )
        seed_cache = SeedDistanceCache(
            linkage=linkage, seeds=tuple(seeds), matrix=seed_square
        )
        new_merges = hac_kernel.agglomerate_square(
            seed_square.copy(), seeds, linkage
        )
    else:
        new_merges = agglomerate_clusters(matrix, seeds, linkage)
    new_merges.sort(key=lambda merge: merge.distance)
    try:
        dendrogram = Dendrogram(component, prefix + new_merges)
    except ValueError:
        # The seeded continuation produced a merge below the kept prefix —
        # the cache was inconsistent with the matrix.  Never guess.
        return rebuild_outcome(matrix, component, linkage, kernel=kernel)
    return SpliceOutcome(
        dendrogram=dendrogram,
        merges_reused=len(prefix),
        merges_recomputed=len(new_merges),
        spliced=True,
        kernel=resolved,
        seed_cache=seed_cache,
    )


def _seed_matrix_with_reuse(
    block,
    seeds: Sequence[frozenset[str]],
    affected: set[str],
    seed_caches: Sequence[SeedDistanceCache],
    linkage: str,
):
    """The seeds' inter-cluster distance matrix, reusing cached rows.

    A seed that also appears in a previous repair's cache and contains no
    dirty key kept every distance to *other such seeds from the same
    cache*: those entries are copied.  Distances across different caches
    (the update bridged components) default to ``inf``, which is exact —
    before the bridge there was no edge between the old components, and
    any edge the bridge created involves a dirty key, i.e. an affected
    seed.  Rows of affected or brand-new seeds are re-reduced from the
    distance block (:func:`~repro.core.hac_kernel.seed_matrix_rows`).
    """
    np = require_numpy()
    count = len(seeds)
    square = np.full((count, count), math.inf)
    reused: set[int] = set()
    for cache in seed_caches:
        if cache is None or cache.linkage != linkage:
            continue
        old_index = {cluster: at for at, cluster in enumerate(cache.seeds)}
        new_ids: list[int] = []
        old_ids: list[int] = []
        for at, seed in enumerate(seeds):
            if at in reused:
                continue
            old_at = old_index.get(seed)
            if old_at is not None and affected.isdisjoint(seed):
                new_ids.append(at)
                old_ids.append(old_at)
        if new_ids:
            square[np.ix_(new_ids, new_ids)] = cache.matrix[
                np.ix_(old_ids, old_ids)
            ]
            reused.update(new_ids)
    fresh = [at for at in range(count) if at not in reused]
    if fresh:
        rows = hac_kernel.seed_matrix_rows(block, seeds, fresh, linkage)
        square[fresh, :] = rows
        square[:, fresh] = rows.T
    np.fill_diagonal(square, math.inf)
    return square


# -- checkpoint encoding ------------------------------------------------------


def dendrogram_to_state(dendrogram: Dendrogram) -> dict:
    """A dendrogram as a compact JSON-safe dict.

    Items are listed once; each merge is ``[left, right, distance]``
    where ``left``/``right`` reference either an item (index < number of
    items) or an earlier merge's result (number of items + merge index) —
    the SciPy linkage-matrix convention, O(merges) instead of the O(n²)
    of spelling every member set out.

    >>> from repro.core.correlation import CorrelationMatrix
    >>> matrix = CorrelationMatrix({"a": {0, 1}, "b": {0, 1}, "c": {1}})
    >>> state = dendrogram_to_state(build_dendrogram(matrix, frozenset("abc"), "complete"))
    >>> state["items"]
    ['a', 'b', 'c']
    >>> [sorted(c) for c in dendrogram_from_state(state).cut(0.5)]
    [['a', 'b'], ['c']]
    """
    items = sorted(dendrogram.items)
    node_of: dict[frozenset[str], int] = {
        frozenset((item,)): index for index, item in enumerate(items)
    }
    merges: list[list] = []
    for offset, merge in enumerate(dendrogram.merges):
        try:
            left = node_of[merge.left]
            right = node_of[merge.right]
        except KeyError:
            raise ValueError(
                "dendrogram merge references a cluster that is neither an "
                "item nor a previous merge result"
            ) from None
        merges.append([left, right, merge.distance])
        node_of[merge.members] = len(items) + offset
    return {"items": items, "merges": merges}


def dendrogram_from_state(state: dict) -> Dendrogram:
    """Rebuild a dendrogram from :func:`dendrogram_to_state` output."""
    items = [str(item) for item in state["items"]]
    nodes: list[frozenset[str]] = [frozenset((item,)) for item in items]
    merges: list[Merge] = []
    for left_ref, right_ref, distance in state["merges"]:
        left = nodes[int(left_ref)]
        right = nodes[int(right_ref)]
        members = left | right
        merges.append(
            Merge(left=left, right=right, distance=float(distance), members=members)
        )
        nodes.append(members)
    return Dendrogram(frozenset(items), merges)

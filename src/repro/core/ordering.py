"""Incrementally maintained cluster ordering for live sessions.

Every cluster view this library hands out lists clusters *largest first,
then lexicographic* — the ``(-len, sorted keys)`` order the batch
pipeline, the engines and the merged :class:`~repro.core.cluster_model.
ClusterSet` all share.  The streaming engines used to rebuild that order
with a full sort on every update, an O(total clusters · log) scan even
when one two-key component changed.  :class:`SortedKeySets` keeps the
order live instead: removals and insertions are binary searches plus a
C-level ``memmove``, so an update touching *c* clusters costs
O(c · log n) comparisons instead of a fresh sort over everything — and
the common case (one dirty component swapping a handful of clusters)
never compares the rest.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Iterator


def order_key(key_set: frozenset[str]) -> tuple[int, tuple[str, ...]]:
    """The global cluster ordering: largest first, then lexicographic."""
    return (-len(key_set), tuple(sorted(key_set)))


class SortedKeySets:
    """A collection of disjoint cluster key sets kept in display order.

    Key sets are assumed pairwise distinct (they partition disjoint key
    populations — per engine, and across shards in the merged view), so
    the ordering key is unique and lookups are exact.
    """

    __slots__ = ("_keys", "_sets")

    def __init__(self, key_sets: Iterable[frozenset[str]] = ()) -> None:
        paired = sorted((order_key(key_set), key_set) for key_set in key_sets)
        self._keys = [key for key, _ in paired]
        self._sets = [key_set for _, key_set in paired]

    def add(self, key_set: frozenset[str]) -> None:
        key = order_key(key_set)
        at = bisect_left(self._keys, key)
        self._keys.insert(at, key)
        self._sets.insert(at, key_set)

    def remove(self, key_set: frozenset[str]) -> None:
        key = order_key(key_set)
        at = bisect_left(self._keys, key)
        if at == len(self._keys) or self._keys[at] != key:
            raise KeyError(f"key set not present: {sorted(key_set)}")
        del self._keys[at]
        del self._sets[at]

    def as_key_sets(self) -> list[frozenset[str]]:
        """The key sets in display order (a fresh list)."""
        return list(self._sets)

    def __len__(self) -> int:
        return len(self._sets)

    def __iter__(self) -> Iterator[frozenset[str]]:
        return iter(self._sets)


def diff_sorted(
    old: list[frozenset[str]], new: list[frozenset[str]]
) -> tuple[list[frozenset[str]], list[frozenset[str]]]:
    """(removed, added) between two lists already in display order.

    A single merge-walk over the two lists — used where a wholesale
    replacement (restore, worker hand-off) must be turned into the delta
    the incremental order maintenance consumes.
    """
    removed: list[frozenset[str]] = []
    added: list[frozenset[str]] = []
    i = j = 0
    while i < len(old) and j < len(new):
        ka, kb = order_key(old[i]), order_key(new[j])
        if ka == kb:
            i += 1
            j += 1
        elif ka < kb:
            removed.append(old[i])
            i += 1
        else:
            added.append(new[j])
            j += 1
    removed.extend(old[i:])
    added.extend(new[j:])
    return removed, added

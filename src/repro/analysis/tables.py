"""ASCII table rendering for the benchmark reports.

Every benchmark regenerating a paper table or figure prints its rows/series
through these helpers, so EXPERIMENTS.md and the bench output share one
format.
"""

from __future__ import annotations

from typing import Any, Sequence


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render a fixed-width table.

    >>> print(ascii_table(["a", "b"], [[1, 22]]))
    a | b
    --+---
    1 | 22
    """
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def series_table(
    x_label: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render figure data: one x column plus one column per series."""
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, "
                f"expected {len(x_values)}"
            )
    headers = [x_label] + list(series)
    rows = [
        [x] + [_round(series[name][i]) for name in series]
        for i, x in enumerate(x_values)
    ]
    return ascii_table(headers, rows, title=title)


def _round(value: Any) -> Any:
    if isinstance(value, float):
        return f"{value:.2f}"
    return value


def format_percent(fraction: float | None) -> str:
    """Render Table II's accuracy column ('88.6%' or 'N/A')."""
    if fraction is None:
        return "N/A"
    return f"{fraction * 100:.1f}%"

"""Summary statistics over cluster sets and repair outcomes.

Small, dependency-free helpers the reports and notebooks use to describe
experiment results: cluster-size distributions and trial/time summaries.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.cluster_model import ClusterSet


@dataclass(frozen=True)
class SizeDistribution:
    """Distribution of cluster sizes in one clustering result."""

    histogram: dict[int, int]
    total_clusters: int
    multi_clusters: int
    mean_multi_size: float
    max_size: int

    def fraction_multi(self) -> float:
        if self.total_clusters == 0:
            return 0.0
        return self.multi_clusters / self.total_clusters


def cluster_size_distribution(cluster_set: ClusterSet) -> SizeDistribution:
    """Describe the size structure of a ClusterSet."""
    sizes = [len(c) for c in cluster_set]
    histogram = dict(sorted(Counter(sizes).items()))
    multi = [s for s in sizes if s > 1]
    return SizeDistribution(
        histogram=histogram,
        total_clusters=len(sizes),
        multi_clusters=len(multi),
        mean_multi_size=(sum(multi) / len(multi)) if multi else 0.0,
        max_size=max(sizes) if sizes else 0,
    )


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence (report-friendly)."""
    return sum(values) / len(values) if values else 0.0


def percentile(values: Iterable[float], fraction: float) -> float:
    """Nearest-rank percentile, ``fraction`` in [0, 1].

    >>> percentile([1, 2, 3, 4], 0.5)
    3
    >>> percentile([5], 0.99)
    5
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must lie in [0, 1], got {fraction}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of an empty sequence")
    rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


@dataclass(frozen=True)
class TrialSummary:
    """Aggregate of trials-to-fix across repair runs (Table IV style)."""

    count: int
    mean_trials: float
    median_trials: float
    worst_trials: float

    @classmethod
    def from_trials(cls, trials: Sequence[float]) -> "TrialSummary":
        if not trials:
            raise ValueError("no trials to summarise")
        return cls(
            count=len(trials),
            mean_trials=mean(trials),
            median_trials=percentile(trials, 0.5),
            worst_trials=max(trials),
        )

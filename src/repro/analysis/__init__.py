"""Reporting helpers: ASCII tables and series used by the benchmarks."""

from repro.analysis.stats import (
    SizeDistribution,
    TrialSummary,
    cluster_size_distribution,
)
from repro.analysis.tables import ascii_table, format_percent, series_table

__all__ = [
    "SizeDistribution",
    "TrialSummary",
    "cluster_size_distribution",
    "ascii_table",
    "format_percent",
    "series_table",
]

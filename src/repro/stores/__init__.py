"""Configuration-store emulators.

The paper's loggers intercept three kinds of configuration stores: the
Windows registry, the GConf configuration system, and application-specific
files (INI, plain text, XML, JSON, PostScript).  Each is rebuilt here as an
in-memory emulator exposing the same structure and the change notifications
the loggers need.
"""

from repro.stores.events import AccessEvent, AccessKind
from repro.stores.base import ConfigStore, DictStore
from repro.stores.registry import RegistryStore, RegistryType
from repro.stores.gconf import GConfStore
from repro.stores.filestore import FileStore, VirtualFile

__all__ = [
    "AccessEvent",
    "AccessKind",
    "ConfigStore",
    "DictStore",
    "RegistryStore",
    "RegistryType",
    "GConfStore",
    "FileStore",
    "VirtualFile",
]

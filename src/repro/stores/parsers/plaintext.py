"""Flat ``key=value`` configuration files (the paper's "plain text" format).

Lines are ``key = value``; ``#`` and ``;`` start comments; blank lines are
ignored.  Lists are rendered comma-separated between square brackets.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ParseError
from repro.stores.parsers.common import check_flat_value, coerce_scalar, render_scalar


def loads(text: str) -> dict[str, Any]:
    data: dict[str, Any] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(("#", ";")):
            continue
        if "=" not in line:
            raise ParseError(f"expected 'key=value', got {line!r}", line=lineno)
        key, _, value = line.partition("=")
        key = key.strip()
        if not key:
            raise ParseError("empty key", line=lineno)
        data[key] = _parse_value(value.strip())
    return data


def _parse_value(token: str) -> Any:
    if token.startswith("[") and token.endswith("]"):
        inner = token[1:-1].strip()
        if not inner:
            return []
        return [coerce_scalar(part.strip()) for part in inner.split(",")]
    return coerce_scalar(token)


def dumps(data: dict[str, Any]) -> str:
    lines = []
    for key, value in data.items():
        check_flat_value(key, value)
        if "=" in key:
            raise ParseError(f"plain-text keys cannot contain '=': {key!r}")
        lines.append(f"{key}={_render_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _render_value(value: Any) -> str:
    if isinstance(value, list):
        return "[" + ", ".join(render_scalar(item) for item in value) + "]"
    return render_scalar(value)

"""PostScript-style key-value configuration files.

Acrobat-family products store preferences in a PostScript-like syntax; the
paper lists PostScript among the formats its file logger parses.  The
emulated dialect is one definition per line::

    /MenuBarVisible true def
    /OpenInPlace false def
    /RecentFiles [ (a.pdf) (b.pdf) ] def
    /Title (Acrobat Reader) def
    /Zoom 1.25 def

Strings are parenthesised, numbers and booleans bare, lists bracketed.
Keys keep hierarchical structure with ``/`` separators *inside* the name,
e.g. ``/Toolbar/Find/Visible``.
"""

from __future__ import annotations

import re
from typing import Any

from repro.exceptions import ParseError
from repro.stores.parsers.common import check_flat_value

_LINE_RE = re.compile(r"^/(?P<key>\S+)\s+(?P<value>.+?)\s+def$")
_STRING_RE = re.compile(r"\((?P<body>(?:[^()\\]|\\.)*)\)")


def loads(text: str) -> dict[str, Any]:
    data: dict[str, Any] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("%"):
            continue
        match = _LINE_RE.match(line)
        if match is None:
            raise ParseError(f"expected '/Key value def', got {line!r}", line=lineno)
        key = match.group("key")
        data[key] = _parse_value(match.group("value"), lineno)
    return data


def _parse_value(token: str, lineno: int) -> Any:
    token = token.strip()
    if token.startswith("(") :
        match = _STRING_RE.fullmatch(token)
        if match is None:
            raise ParseError(f"malformed string {token!r}", line=lineno)
        return _unescape(match.group("body"))
    if token.startswith("["):
        if not token.endswith("]"):
            raise ParseError(f"malformed array {token!r}", line=lineno)
        return [
            _parse_value(item, lineno)
            for item in _split_array(token[1:-1], lineno)
        ]
    if token == "true":
        return True
    if token == "false":
        return False
    if token == "null":
        return None
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    raise ParseError(f"unrecognised token {token!r}", line=lineno)


def _split_array(body: str, lineno: int) -> list[str]:
    """Split array body into item tokens, respecting parenthesised strings."""
    items: list[str] = []
    i = 0
    n = len(body)
    while i < n:
        ch = body[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "(":
            depth = 0
            j = i
            while j < n:
                if body[j] == "\\":
                    j += 2
                    continue
                if body[j] == "(":
                    depth += 1
                elif body[j] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            if j >= n:
                raise ParseError("unterminated string in array", line=lineno)
            items.append(body[i : j + 1])
            i = j + 1
        else:
            j = i
            while j < n and not body[j].isspace():
                j += 1
            items.append(body[i:j])
            i = j
    return items


def _unescape(body: str) -> str:
    return body.replace(r"\)", ")").replace(r"\(", "(").replace("\\\\", "\\")


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace("(", r"\(").replace(")", r"\)")


def dumps(data: dict[str, Any]) -> str:
    lines = []
    for key, value in data.items():
        check_flat_value(key, value)
        if any(ch.isspace() for ch in key):
            raise ParseError(f"PostScript keys cannot contain whitespace: {key!r}")
        lines.append(f"/{key} {_render_value(value)} def")
    return "\n".join(lines) + ("\n" if lines else "")


def _render_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "null"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return f"({_escape(value)})"
    return "[ " + " ".join(_render_value(item) for item in value) + " ]"

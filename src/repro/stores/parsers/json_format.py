"""JSON configuration files (e.g. Chrome's ``Preferences``).

Nested objects are flattened to ``/``-joined canonical keys on load and
rebuilt on dump.  Lists are kept as leaf values and must contain scalars
only — nested structure inside lists is rejected, since a list element has
no stable canonical key for the TTKV to track.
"""

from __future__ import annotations

import json
from typing import Any

from repro.exceptions import ParseError
from repro.stores.parsers.common import flatten, unflatten


def loads(text: str) -> dict[str, Any]:
    try:
        document = json.loads(text) if text.strip() else {}
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ParseError("top-level JSON value must be an object")
    return flatten(document)


def dumps(data: dict[str, Any]) -> str:
    return json.dumps(unflatten(data), indent=2, sort_keys=False) + "\n"

"""Hierarchical ``key=value`` configuration files (the paper's "INI").

``[section]`` headers introduce hierarchy; keys inside a section get the
canonical flat name ``section/key``.  Nested sections are written as
``[outer/inner]``.  Keys before any section header are top-level.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ParseError
from repro.stores.parsers import plaintext
from repro.stores.parsers.common import check_flat_value


def loads(text: str) -> dict[str, Any]:
    data: dict[str, Any] = {}
    section = ""
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(("#", ";")):
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise ParseError(f"unterminated section header {line!r}", line=lineno)
            section = line[1:-1].strip()
            if not section:
                raise ParseError("empty section name", line=lineno)
            continue
        if "=" not in line:
            raise ParseError(f"expected 'key=value', got {line!r}", line=lineno)
        key, _, value = line.partition("=")
        key = key.strip()
        if not key:
            raise ParseError("empty key", line=lineno)
        flat_key = f"{section}/{key}" if section else key
        data[flat_key] = plaintext._parse_value(value.strip())
    return data


def dumps(data: dict[str, Any]) -> str:
    """Render grouped by section, preserving first-seen section order."""
    sections: dict[str, dict[str, Any]] = {}
    for flat_key, value in data.items():
        check_flat_value(flat_key, value)
        if "/" in flat_key:
            section, _, key = flat_key.rpartition("/")
        else:
            section, key = "", flat_key
        if "=" in key or "[" in key:
            raise ParseError(f"INI keys cannot contain '=' or '[': {key!r}")
        sections.setdefault(section, {})[key] = value

    chunks: list[str] = []
    top = sections.pop("", None)
    if top:
        chunks.append(plaintext.dumps(top).rstrip("\n"))
    for section, entries in sections.items():
        body = plaintext.dumps(entries).rstrip("\n")
        chunks.append(f"[{section}]\n{body}")
    return "\n\n".join(chunks) + ("\n" if chunks else "")

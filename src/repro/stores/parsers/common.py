"""Helpers shared by the text-based configuration parsers."""

from __future__ import annotations

from typing import Any

from repro.exceptions import ParseError

#: Scalar types every format can represent.
SCALARS = (str, int, float, bool, type(None))


def coerce_scalar(text: str) -> Any:
    """Interpret a raw text token as the most specific scalar type.

    Mirrors how desktop applications round-trip settings through untyped
    text formats: booleans and numbers are recognised, everything else
    stays a string.

    >>> coerce_scalar("true"), coerce_scalar("42"), coerce_scalar("1.5")
    (True, 42, 1.5)
    >>> coerce_scalar("hello")
    'hello'
    """
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered in ("null", "none", ""):
        return None if lowered != "" else ""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def render_scalar(value: Any) -> str:
    """Inverse of :func:`coerce_scalar` for supported scalars."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return value
    raise ParseError(f"cannot render value of type {type(value).__name__}")


def check_flat_value(key: str, value: Any) -> None:
    """Validate that ``value`` is a scalar or a list of scalars."""
    if isinstance(value, SCALARS):
        return
    if isinstance(value, list):
        for item in value:
            if not isinstance(item, SCALARS):
                raise ParseError(
                    f"key {key!r}: lists may only contain scalars, "
                    f"found {type(item).__name__}"
                )
        return
    raise ParseError(
        f"key {key!r}: unsupported value type {type(value).__name__}"
    )


def flatten(nested: dict, separator: str = "/", prefix: str = "") -> dict[str, Any]:
    """Flatten a nested dict into canonical slash-joined keys.

    Raises ParseError on non-dict/non-scalar intermediate values.
    """
    flat: dict[str, Any] = {}
    for key, value in nested.items():
        if not isinstance(key, str) or not key:
            raise ParseError(f"invalid key {key!r}")
        path = f"{prefix}{separator}{key}" if prefix else key
        if isinstance(value, dict):
            flat.update(flatten(value, separator, path))
        else:
            check_flat_value(path, value)
            flat[path] = value
    return flat


def unflatten(flat: dict[str, Any], separator: str = "/") -> dict:
    """Inverse of :func:`flatten`.

    Raises ParseError if a key is both a leaf and an interior node
    (e.g. ``a`` and ``a/b`` both present).
    """
    nested: dict = {}
    for key, value in flat.items():
        parts = key.split(separator)
        node = nested
        for part in parts[:-1]:
            child = node.get(part)
            if child is None:
                child = {}
                node[part] = child
            elif not isinstance(child, dict):
                raise ParseError(f"key {key!r} conflicts with leaf {part!r}")
            node = child
        leaf = parts[-1]
        if isinstance(node.get(leaf), dict):
            raise ParseError(f"leaf {key!r} conflicts with interior node")
        node[leaf] = value
    return nested

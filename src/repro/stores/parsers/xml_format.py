"""XML configuration files.

The emulated dialect covers what desktop-application config files use:

* element hierarchy maps to ``/``-joined canonical keys;
* leaf elements carry a ``type`` attribute (``string``/``int``/``float``/
  ``bool``/``null``) and their text is the value;
* list values are leaf elements containing repeated ``<li>`` children.

Example::

    <config>
      <toolbar>
        <visible type="bool">true</visible>
        <buttons type="list"><li>home</li><li>find</li></buttons>
      </toolbar>
    </config>

loads() -> ``{"toolbar/visible": True, "toolbar/buttons": ["home", "find"]}``
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any

from repro.exceptions import ParseError
from repro.stores.parsers.common import check_flat_value, coerce_scalar, render_scalar

_ROOT_TAG = "config"


def loads(text: str) -> dict[str, Any]:
    if not text.strip():
        return {}
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ParseError(f"invalid XML: {exc}") from exc
    if root.tag != _ROOT_TAG:
        raise ParseError(f"expected root element <{_ROOT_TAG}>, got <{root.tag}>")
    data: dict[str, Any] = {}
    for child in root:
        _walk(child, "", data)
    return data


def _walk(element: ET.Element, prefix: str, data: dict[str, Any]) -> None:
    key = f"{prefix}/{element.tag}" if prefix else element.tag
    type_attr = element.get("type")
    if type_attr is not None:
        data[key] = _parse_leaf(element, type_attr, key)
        return
    children = list(element)
    if not children:
        # Untyped leaf: coerce the text like the key=value formats do.
        data[key] = coerce_scalar((element.text or "").strip())
        return
    for child in children:
        _walk(child, key, data)


def _parse_leaf(element: ET.Element, type_attr: str, key: str) -> Any:
    text = (element.text or "").strip()
    if type_attr == "string":
        return element.text or ""
    if type_attr == "int":
        try:
            return int(text)
        except ValueError:
            raise ParseError(f"key {key!r}: bad int {text!r}") from None
    if type_attr == "float":
        try:
            return float(text)
        except ValueError:
            raise ParseError(f"key {key!r}: bad float {text!r}") from None
    if type_attr == "bool":
        if text not in ("true", "false"):
            raise ParseError(f"key {key!r}: bad bool {text!r}")
        return text == "true"
    if type_attr == "null":
        return None
    if type_attr == "list":
        items = []
        for child in element:
            if child.tag != "li":
                raise ParseError(f"key {key!r}: list children must be <li>")
            items.append(coerce_scalar((child.text or "").strip()))
        return items
    raise ParseError(f"key {key!r}: unknown type {type_attr!r}")


def dumps(data: dict[str, Any]) -> str:
    root = ET.Element(_ROOT_TAG)
    nodes: dict[str, ET.Element] = {"": root}
    for flat_key, value in data.items():
        check_flat_value(flat_key, value)
        parts = flat_key.split("/")
        prefix = ""
        parent = root
        for part in parts[:-1]:
            prefix = f"{prefix}/{part}" if prefix else part
            node = nodes.get(prefix)
            if node is None:
                node = ET.SubElement(parent, part)
                nodes[prefix] = node
            parent = node
        leaf = ET.SubElement(parent, parts[-1])
        _render_leaf(leaf, value)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode") + "\n"


def _render_leaf(leaf: ET.Element, value: Any) -> None:
    if isinstance(value, bool):
        leaf.set("type", "bool")
        leaf.text = "true" if value else "false"
    elif isinstance(value, int):
        leaf.set("type", "int")
        leaf.text = str(value)
    elif isinstance(value, float):
        leaf.set("type", "float")
        leaf.text = repr(value)
    elif value is None:
        leaf.set("type", "null")
    elif isinstance(value, str):
        leaf.set("type", "string")
        leaf.text = value
    else:  # list of scalars, validated by check_flat_value
        leaf.set("type", "list")
        for item in value:
            li = ET.SubElement(leaf, "li")
            li.text = render_scalar(item)

"""Configuration-file format parsers.

The paper's study of application-specific configuration files found five
common formats: JSON, XML, PostScript, and two ``key=value`` list formats
(hierarchical "INI" and flat "plain text").  Each parser module exposes::

    loads(text) -> dict[str, value]   # flat canonical keys
    dumps(data) -> str

Flat canonical keys use ``/`` as the hierarchy separator.  Values are
scalars (str, int, float, bool, None) or lists of scalars.
"""

from repro.stores.parsers import ini, json_format, plaintext, pskv, xml_format

_FORMATS = {
    "ini": ini,
    "plaintext": plaintext,
    "json": json_format,
    "xml": xml_format,
    "postscript": pskv,
}


def get_parser(name: str):
    """Return the parser module for ``name``.

    >>> get_parser("json").__name__
    'repro.stores.parsers.json_format'
    """
    try:
        return _FORMATS[name]
    except KeyError:
        raise ValueError(
            f"unknown configuration file format {name!r}; "
            f"known formats: {sorted(_FORMATS)}"
        ) from None


def known_formats() -> list[str]:
    return sorted(_FORMATS)

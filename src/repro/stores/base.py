"""Abstract configuration store with change notification.

All store emulators derive from :class:`ConfigStore`, which provides the
flat canonical key-value interface the rest of the system consumes
(clustering, rollback, sandboxing) plus an observer mechanism that loggers
subscribe to.  Concrete stores add their native flavoured APIs (registry
paths and value types, GConf typed getters, file flush semantics) on top.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Iterator

from repro.common.clock import SimClock
from repro.exceptions import StoreError
from repro.stores.events import AccessEvent

Observer = Callable[[AccessEvent], None]


class ConfigStore:
    """In-memory key-value configuration store with observers.

    Parameters
    ----------
    clock:
        Time source used to stamp access events.  Stores created inside a
        sandbox share the sandbox clock so replayed trials see consistent
        time.
    """

    def __init__(self, clock: SimClock | None = None) -> None:
        self._data: dict[str, Any] = {}
        self._observers: list[Observer] = []
        self.clock = clock if clock is not None else SimClock()

    # -- observer plumbing ---------------------------------------------------

    def subscribe(self, observer: Observer) -> None:
        """Register ``observer`` to receive every subsequent access event."""
        if observer in self._observers:
            raise StoreError("observer already subscribed")
        self._observers.append(observer)

    def unsubscribe(self, observer: Observer) -> None:
        try:
            self._observers.remove(observer)
        except ValueError:
            raise StoreError("observer was not subscribed") from None

    def _notify(self, event: AccessEvent) -> None:
        for observer in self._observers:
            observer(event)

    # -- flat key-value interface ---------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        """Read a key, notifying observers of the read access."""
        self._notify(AccessEvent.read(key, self.clock.now()))
        return self._data.get(key, default)

    def set(self, key: str, value: Any) -> None:
        """Write a key, notifying observers of the write access."""
        _validate_key(key)
        _validate_value(value)
        self._data[key] = value
        self._notify(AccessEvent.write(key, value, self.clock.now()))

    def delete(self, key: str) -> None:
        """Delete a key if present, notifying observers.

        Deleting an absent key is a silent no-op, matching registry/GConf
        semantics where removal of a missing entry is not an error worth
        surfacing to the logger.
        """
        if key in self._data:
            del self._data[key]
            self._notify(AccessEvent.delete(key, self.clock.now()))

    def peek(self, key: str, default: Any = None) -> Any:
        """Read a key *without* notifying observers.

        Used by internal machinery (rendering, sandbox diffing) that must
        not pollute the recorded trace with artificial reads.
        """
        return self._data.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> list[str]:
        return list(self._data)

    def items(self) -> Iterator[tuple[str, Any]]:
        return iter(list(self._data.items()))

    def as_dict(self) -> dict[str, Any]:
        """Deep copy of the current contents (observer-silent)."""
        return copy.deepcopy(self._data)

    def load_dict(self, data: dict[str, Any], notify: bool = False) -> None:
        """Bulk-load contents.

        With ``notify=False`` (the default) the load is silent — used to
        install an initial configuration that predates logging, which is how
        the paper models keys "not modified from their initial value".
        """
        for key, value in data.items():
            _validate_key(key)
            _validate_value(value)
            if notify:
                self.set(key, value)
            else:
                self._data[key] = value

    def clone(self, clock: SimClock | None = None) -> "ConfigStore":
        """Copy of this store's contents with *no* observers attached.

        This is the sandbox primitive: trial executions run against a clone
        so that no persistent changes (and no logged events) escape.
        """
        twin = type(self)(clock=clock if clock is not None else self.clock)
        twin._data = copy.deepcopy(self._data)
        return twin


class DictStore(ConfigStore):
    """The plainest concrete store: exactly the base behaviour.

    Useful in tests and for applications whose configuration store flavour
    is irrelevant to the scenario being exercised.
    """


def _validate_key(key: str) -> None:
    if not isinstance(key, str) or not key:
        raise StoreError(f"configuration keys must be non-empty strings, got {key!r}")
    if "\n" in key:
        raise StoreError("configuration keys cannot contain newlines")


_SCALAR_TYPES = (str, int, float, bool, type(None))


def _validate_value(value: Any) -> None:
    if isinstance(value, _SCALAR_TYPES):
        return
    if isinstance(value, list):
        for item in value:
            _validate_value(item)
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise StoreError("dict-valued settings must have string keys")
            _validate_value(item)
        return
    raise StoreError(
        f"unsupported configuration value type {type(value).__name__}"
    )

"""GConf configuration-system emulator.

GConf (the GNOME 2-era configuration store the paper intercepts with an
``LD_PRELOAD`` shim) is a tree of slash-separated paths with typed leaves.
Canonical flat keys are the GConf paths themselves, e.g.
``/apps/evolution/mail/mark_seen``.
"""

from __future__ import annotations

from typing import Any

from repro.common.clock import SimClock
from repro.exceptions import StoreError
from repro.stores.base import ConfigStore

_GCONF_TYPES = {
    "bool": bool,
    "int": int,
    "float": float,
    "string": str,
    "list": list,
}


def validate_path(path: str) -> None:
    """GConf paths are absolute, slash-separated, with no empty segments."""
    if not path.startswith("/"):
        raise StoreError(f"GConf path must be absolute: {path!r}")
    if path != "/" and (path.endswith("/") or "//" in path):
        raise StoreError(f"malformed GConf path: {path!r}")


class GConfStore(ConfigStore):
    """Typed, path-addressed store mirroring the GConf client API."""

    def __init__(self, clock: SimClock | None = None) -> None:
        super().__init__(clock=clock)
        self._types: dict[str, str] = {}

    # -- typed setters (gconf_client_set_*) -------------------------------

    def set_bool(self, path: str, value: bool) -> None:
        self._set_typed(path, value, "bool")

    def set_int(self, path: str, value: int) -> None:
        if isinstance(value, bool):
            raise StoreError("use set_bool for booleans")
        self._set_typed(path, value, "int")

    def set_float(self, path: str, value: float) -> None:
        self._set_typed(path, float(value), "float")

    def set_string(self, path: str, value: str) -> None:
        self._set_typed(path, value, "string")

    def set_list(self, path: str, value: list) -> None:
        self._set_typed(path, list(value), "list")

    def _set_typed(self, path: str, value: Any, type_name: str) -> None:
        validate_path(path)
        expected = _GCONF_TYPES[type_name]
        if not isinstance(value, expected):
            raise StoreError(
                f"GConf {type_name} expected for {path!r}, got {type(value).__name__}"
            )
        declared = self._types.get(path)
        if declared is not None and declared != type_name:
            raise StoreError(
                f"GConf key {path!r} already has type {declared}, cannot "
                f"write a {type_name}"
            )
        self._types[path] = type_name
        self.set(path, value)

    # -- typed getters (gconf_client_get_*) --------------------------------

    def get_bool(self, path: str, default: bool = False) -> bool:
        return self._get_typed(path, "bool", default)

    def get_int(self, path: str, default: int = 0) -> int:
        return self._get_typed(path, "int", default)

    def get_float(self, path: str, default: float = 0.0) -> float:
        return self._get_typed(path, "float", default)

    def get_string(self, path: str, default: str = "") -> str:
        return self._get_typed(path, "string", default)

    def get_list(self, path: str, default: list | None = None) -> list:
        return self._get_typed(path, "list", default if default is not None else [])

    def _get_typed(self, path: str, type_name: str, default: Any) -> Any:
        validate_path(path)
        sentinel = object()
        value = self.get(path, sentinel)
        if value is sentinel:
            return default
        declared = self._types.get(path)
        if declared is not None and declared != type_name:
            raise StoreError(
                f"GConf key {path!r} has type {declared}, not {type_name}"
            )
        return value

    def unset(self, path: str) -> None:
        """gconf_client_unset equivalent."""
        validate_path(path)
        self._types.pop(path, None)
        self.delete(path)

    def all_entries(self, directory: str) -> list[str]:
        """Keys directly inside ``directory`` (observer-silent)."""
        validate_path(directory)
        prefix = directory.rstrip("/") + "/"
        return [
            key
            for key in self.keys()
            if key.startswith(prefix) and "/" not in key[len(prefix):]
        ]

    def all_dirs(self, directory: str) -> list[str]:
        """Immediate sub-directories of ``directory`` (observer-silent)."""
        validate_path(directory)
        prefix = directory.rstrip("/") + "/"
        dirs: list[str] = []
        seen: set[str] = set()
        for key in self.keys():
            if key.startswith(prefix):
                rest = key[len(prefix):]
                if "/" in rest:
                    first = rest.split("/", 1)[0]
                    if first not in seen:
                        seen.add(first)
                        dirs.append(prefix + first)
        return dirs

    def clone(self, clock: SimClock | None = None) -> "GConfStore":
        twin = super().clone(clock=clock)
        assert isinstance(twin, GConfStore)
        twin._types = dict(self._types)
        return twin

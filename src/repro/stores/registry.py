"""Windows-registry emulator.

Reproduces the structure the paper's registry logger observes: hives
(``HKCU``, ``HKLM``, ...), backslash-separated key paths, named values with
REG_* types, and the Win32-flavoured access API (``set_value`` /
``query_value`` / ``delete_value`` / ``enum_values`` / ``enum_subkeys``).

Canonical flat key names are ``<hive>\\<path>\\<value name>``, which is how
the TTKV and the clustering pipeline identify registry settings.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.common.clock import SimClock
from repro.exceptions import StoreError
from repro.stores.base import ConfigStore

HIVES = ("HKCU", "HKLM", "HKCR", "HKU", "HKCC")


class RegistryType(enum.Enum):
    """The registry value types applications commonly use."""

    REG_SZ = "REG_SZ"
    REG_EXPAND_SZ = "REG_EXPAND_SZ"
    REG_DWORD = "REG_DWORD"
    REG_QWORD = "REG_QWORD"
    REG_BINARY = "REG_BINARY"
    REG_MULTI_SZ = "REG_MULTI_SZ"

    def validate(self, value: Any) -> None:
        """Raise StoreError when ``value`` is not representable as this type."""
        if self in (RegistryType.REG_SZ, RegistryType.REG_EXPAND_SZ):
            ok = isinstance(value, str)
        elif self in (RegistryType.REG_DWORD, RegistryType.REG_QWORD):
            bits = 32 if self is RegistryType.REG_DWORD else 64
            ok = (
                isinstance(value, int)
                and not isinstance(value, bool)
                and 0 <= value < 2**bits
            )
        elif self is RegistryType.REG_BINARY:
            # Binary payloads are modelled as hex strings to stay
            # JSON-serialisable in the TTKV log.
            ok = isinstance(value, str) and all(
                c in "0123456789abcdefABCDEF" for c in value
            )
        else:  # REG_MULTI_SZ
            ok = isinstance(value, list) and all(isinstance(s, str) for s in value)
        if not ok:
            raise StoreError(f"value {value!r} is not a valid {self.value}")


def join_key(hive: str, path: str, name: str) -> str:
    """Canonical flat key for a registry value.

    >>> join_key("HKCU", "Software\\\\Word", "Max Display")
    'HKCU\\\\Software\\\\Word\\\\Max Display'
    """
    _validate_hive(hive)
    parts = [hive]
    if path:
        parts.append(path.strip("\\"))
    parts.append(name)
    return "\\".join(parts)


def split_key(key: str) -> tuple[str, str, str]:
    """Inverse of :func:`join_key`: (hive, path, value name)."""
    parts = key.split("\\")
    if len(parts) < 2:
        raise StoreError(f"malformed registry key {key!r}")
    hive, *middle, name = parts
    _validate_hive(hive)
    return hive, "\\".join(middle), name


def _validate_hive(hive: str) -> None:
    if hive not in HIVES:
        raise StoreError(f"unknown registry hive {hive!r}")


class RegistryStore(ConfigStore):
    """Hierarchical registry with typed values over the flat base store.

    The flat :class:`~repro.stores.base.ConfigStore` data holds canonical
    keys; this class adds the registry-shaped API and a parallel type map.
    """

    def __init__(self, clock: SimClock | None = None) -> None:
        super().__init__(clock=clock)
        self._types: dict[str, RegistryType] = {}

    # -- Win32-flavoured API ---------------------------------------------------

    def set_value(
        self,
        hive: str,
        path: str,
        name: str,
        value: Any,
        reg_type: RegistryType = RegistryType.REG_SZ,
    ) -> None:
        """RegSetValueEx equivalent."""
        reg_type.validate(value)
        key = join_key(hive, path, name)
        self._types[key] = reg_type
        self.set(key, value)

    def query_value(self, hive: str, path: str, name: str) -> Any:
        """RegQueryValueEx equivalent; raises StoreError when absent."""
        key = join_key(hive, path, name)
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            raise StoreError(f"registry value {key!r} does not exist")
        return value

    def delete_value(self, hive: str, path: str, name: str) -> None:
        """RegDeleteValue equivalent (silent when absent, like the base)."""
        key = join_key(hive, path, name)
        self._types.pop(key, None)
        self.delete(key)

    def value_type(self, hive: str, path: str, name: str) -> RegistryType:
        key = join_key(hive, path, name)
        try:
            return self._types[key]
        except KeyError:
            raise StoreError(f"registry value {key!r} does not exist") from None

    def enum_values(self, hive: str, path: str) -> list[str]:
        """Value names directly under ``hive\\path`` (observer-silent)."""
        prefix = join_key(hive, path, "")
        names = []
        for key in self.keys():
            if key.startswith(prefix):
                rest = key[len(prefix):]
                if rest and "\\" not in rest:
                    names.append(rest)
        return names

    def enum_subkeys(self, hive: str, path: str) -> list[str]:
        """Immediate sub-key names under ``hive\\path`` (observer-silent)."""
        prefix = join_key(hive, path, "")
        subkeys: list[str] = []
        seen: set[str] = set()
        for key in self.keys():
            if key.startswith(prefix):
                rest = key[len(prefix):]
                if "\\" in rest:
                    first = rest.split("\\", 1)[0]
                    if first not in seen:
                        seen.add(first)
                        subkeys.append(first)
        return subkeys

    def delete_tree(self, hive: str, path: str) -> int:
        """RegDeleteTree equivalent; returns the number of values removed."""
        prefix = join_key(hive, path, "")
        doomed = [key for key in self.keys() if key.startswith(prefix)]
        for key in doomed:
            self._types.pop(key, None)
            self.delete(key)
        return len(doomed)

    def clone(self, clock: SimClock | None = None) -> "RegistryStore":
        twin = super().clone(clock=clock)
        assert isinstance(twin, RegistryStore)
        twin._types = dict(self._types)
        return twin

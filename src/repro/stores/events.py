"""Access events emitted by configuration stores.

Every read, write and deletion performed against a store is described by an
:class:`AccessEvent`.  Loggers subscribe to stores and forward these events
(after timestamp quantisation) into the TTKV.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class AccessKind(enum.Enum):
    """The three access types the paper's loggers intercept."""

    READ = "read"
    WRITE = "write"
    DELETE = "delete"


@dataclass(frozen=True)
class AccessEvent:
    """One access to one configuration key.

    Attributes
    ----------
    kind:
        Read, write or delete.
    key:
        Canonical flat key name (e.g. ``HKCU\\Software\\Word\\Max Display``
        or ``/apps/evolution/mail/mark_seen``).
    value:
        The written value for writes; ``None`` for reads and deletions.
    timestamp:
        Simulated time of the access, in seconds since the trace epoch.
    """

    kind: AccessKind
    key: str
    value: Any
    timestamp: float

    @classmethod
    def read(cls, key: str, timestamp: float) -> "AccessEvent":
        return cls(AccessKind.READ, key, None, timestamp)

    @classmethod
    def write(cls, key: str, value: Any, timestamp: float) -> "AccessEvent":
        return cls(AccessKind.WRITE, key, value, timestamp)

    @classmethod
    def delete(cls, key: str, timestamp: float) -> "AccessEvent":
        return cls(AccessKind.DELETE, key, None, timestamp)

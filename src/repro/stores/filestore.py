"""File-backed configuration store with flush semantics.

Applications that do not use an OS-provided store keep an in-memory
key-value working set and periodically *flush* it to a configuration file.
The paper's file logger cannot see individual in-memory writes; it "compares
the files before and after each flush" to infer which keys changed.  This
module reproduces that information loss:

* :class:`VirtualFile` stands in for an on-disk file and notifies watchers
  (the file logger) when its content is replaced;
* :class:`FileStore` is the application-side in-memory store; ``flush()``
  serialises the working set through one of the format parsers into the
  backing file.

With ``autoflush=True`` (the common case the paper observes: "applications
typically flush their in-memory store after each key modification") every
``set``/``delete`` triggers an immediate flush.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.clock import SimClock
from repro.exceptions import StoreError
from repro.stores.base import ConfigStore
from repro.stores.parsers import get_parser

#: watcher(path, old_text, new_text, timestamp)
FileWatcher = Callable[[str, str, str, float], None]


class VirtualFile:
    """An in-memory stand-in for a configuration file on disk."""

    def __init__(self, path: str, content: str = "") -> None:
        if not path:
            raise StoreError("file path cannot be empty")
        self.path = path
        self._content = content
        self._mtime = 0.0
        self._watchers: list[FileWatcher] = []

    @property
    def content(self) -> str:
        return self._content

    @property
    def mtime(self) -> float:
        return self._mtime

    def watch(self, watcher: FileWatcher) -> None:
        """Register an inotify-style watcher for content replacements."""
        if watcher in self._watchers:
            raise StoreError("watcher already registered")
        self._watchers.append(watcher)

    def unwatch(self, watcher: FileWatcher) -> None:
        try:
            self._watchers.remove(watcher)
        except ValueError:
            raise StoreError("watcher was not registered") from None

    def write(self, text: str, timestamp: float) -> None:
        """Replace the file content, notifying watchers of the change."""
        old = self._content
        self._content = text
        self._mtime = timestamp
        for watcher in self._watchers:
            watcher(self.path, old, text, timestamp)


class FileStore(ConfigStore):
    """Application-side in-memory configuration with file flushes.

    Parameters
    ----------
    file:
        The backing :class:`VirtualFile`.
    format_name:
        One of :func:`repro.stores.parsers.known_formats`.
    autoflush:
        Flush after every modification (default, matching observed
        application behaviour).  Set to ``False`` to batch modifications and
        exercise the logger's flush-granularity information loss.
    """

    def __init__(
        self,
        file: VirtualFile,
        format_name: str,
        clock: SimClock | None = None,
        autoflush: bool = True,
    ) -> None:
        super().__init__(clock=clock)
        self.file = file
        self.format_name = format_name
        self.autoflush = autoflush
        self._parser = get_parser(format_name)
        if file.content:
            self.reload()

    def reload(self) -> None:
        """Parse the backing file into the working set (observer-silent)."""
        self._data = dict(self._parser.loads(self.file.content))

    def flush(self) -> None:
        """Serialise the working set into the backing file."""
        self.file.write(self._parser.dumps(dict(self._data)), self.clock.now())

    def set(self, key: str, value: Any) -> None:
        super().set(key, value)
        if self.autoflush:
            self.flush()

    def delete(self, key: str) -> None:
        had_key = key in self._data
        super().delete(key)
        if had_key and self.autoflush:
            self.flush()

    def clone(self, clock: SimClock | None = None) -> "FileStore":
        """Sandbox copy backed by a fresh, unwatched virtual file."""
        effective_clock = clock if clock is not None else self.clock
        twin_file = VirtualFile(self.file.path, self.file.content)
        twin = FileStore(
            twin_file,
            self.format_name,
            clock=effective_clock,
            autoflush=self.autoflush,
        )
        twin._data = self.as_dict()
        return twin

"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro table1
    python -m repro table2 --window 1 --threshold 2
    python -m repro table4
    python -m repro fig2a --points 2,6,10,14
    python -m repro fig3a
    python -m repro fig4
    python -m repro ablations
    python -m repro stream --app "Chrome Browser" --chunks 10
    python -m repro stream --shards 4 --state session.json
    python -m repro stream --shards 8 --executor thread --workers 4 --timings
    python -m repro stream --scenario scenarios/clock_skew.yaml
    python -m repro fleet --machines 4 --chunks 6 --state fleet-state/
    python -m repro fleet --scenario scenarios/flash_crowd.yaml
    python -m repro validate-scenarios
    python -m repro repair --case 13 [--bfs] [--spurious 2]
    python -m repro list-cases
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence


def _parse_floats(text: str) -> tuple[float, ...]:
    try:
        return tuple(float(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated numbers, got {text!r}"
        ) from None


def _worker_count(text: str) -> int:
    """``--workers`` through the executors' own validation rule.

    One source of truth: ``--workers 0`` fails with exactly the message
    ``ProcessShardExecutor(workers=0)`` raises, re-wrapped for argparse.
    """
    from repro.core.executors import _checked_workers

    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be an integer, got {text!r}"
        ) from None
    try:
        return _checked_workers(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ocasta reproduction: regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table I: trace statistics")

    table2 = sub.add_parser("table2", help="Table II: clustering accuracy")
    table2.add_argument("--window", type=float, default=1.0)
    table2.add_argument("--threshold", type=float, default=2.0)
    table2.add_argument("--days", type=int, default=45)
    table2.add_argument("--seed", type=int, default=7)

    sub.add_parser("table3", help="Table III: the 16 configuration errors")

    table4 = sub.add_parser("table4", help="Table IV: recovery performance")
    table4.add_argument(
        "--quick", action="store_true",
        help="stop each search at the fix instead of exhausting candidates",
    )
    table4.add_argument("--no-noclust", action="store_true")

    for name, default in (
        ("fig2a", "2,6,10,14"),
        ("fig2b", "0,1,2"),
        ("fig2c", "10,20,40,80"),
    ):
        fig = sub.add_parser(name, help=f"Figure {name[-2:]}: DFS vs BFS trials")
        fig.add_argument("--points", type=_parse_floats, default=_parse_floats(default))

    sub.add_parser("fig3a", help="Figure 3a: cluster size vs window")
    sub.add_parser("fig3b", help="Figure 3b: cluster size vs threshold")

    fig4 = sub.add_parser("fig4", help="Figure 4: user study")
    fig4.add_argument("--seed", type=int, default=19)

    sub.add_parser("ablations", help="design-choice ablations")

    stream = sub.add_parser(
        "stream",
        help="replay a generated trace through the sharded streaming pipeline",
    )
    stream.add_argument("--app", default="Chrome Browser")
    stream.add_argument("--days", type=int, default=20)
    stream.add_argument("--seed", type=int, default=7)
    stream.add_argument("--chunks", type=int, default=10)
    stream.add_argument("--window", type=float, default=1.0)
    stream.add_argument("--threshold", type=float, default=2.0)
    stream.add_argument(
        "--shards", type=int, default=1,
        help="generate a machine trace with this many applications and "
        "shard the pipeline on their key prefixes",
    )
    stream.add_argument(
        "--shard-prefix", action="append", dest="shard_prefixes", default=None,
        metavar="PREFIX",
        help="shard on this explicit key prefix (repeatable; overrides the "
        "prefixes derived from --shards)",
    )
    stream.add_argument(
        "--state", default=None, metavar="FILE",
        help="session checkpoint: resume from FILE if it exists, and write "
        "the session state back to it on exit",
    )
    stream.add_argument(
        "--executor", choices=("serial", "thread", "process"), default="serial",
        help="shard execution strategy: walk shards serially, or update "
        "them concurrently on a thread or process pool",
    )
    stream.add_argument(
        "--workers", type=_worker_count, default=None, metavar="N",
        help="worker count for --executor thread/process "
        "(default: the machine's CPU count; ignored by serial)",
    )
    stream.add_argument(
        "--repair-mode", choices=("splice", "rebuild"), default=None,
        dest="repair_mode",
        help="dirty-component repair strategy: splice cached dendrogram "
        "merges below the first affected linkage distance (the default), "
        "or re-agglomerate every dirty component from singletons; on "
        "--state resume the flag overrides the checkpointed mode",
    )
    stream.add_argument(
        "--kernel", choices=("auto", "numpy", "python"), default=None,
        help="agglomeration implementation: 'auto' (default) runs large "
        "components on the numpy kernel when numpy is installed, "
        "'numpy'/'python' force one path; results are identical either "
        "way — on --state resume the flag overrides the checkpointed "
        "kernel",
    )
    stream.add_argument(
        "--journal", choices=("auto", "list", "columnar"), default=None,
        help="event-journal backend: 'auto' (default) stores events in "
        "columnar numpy segments when numpy is installed and falls back "
        "to the pure-Python list journal otherwise; 'columnar'/'list' "
        "force one backend; clusters are identical either way — on "
        "--state resume the flag overrides the checkpointed backend",
    )
    stream.add_argument(
        "--scenario", default=None, metavar="YAML",
        help="run one machine of a declarative scenario config instead of "
        "the ad-hoc trace flags; the YAML (plus REPRO__* environment "
        "overrides) governs profile, regime and pipeline parameters, and "
        "the run is gated on incremental clusters equalling the batch "
        "reference (needs the 'scenarios' extra; incompatible with "
        "--state)",
    )
    stream.add_argument(
        "--timings", action="store_true",
        help="append ingest timing (journal append + shard routing, "
        "separate from compute and hand-off), per-shard timing (slowest "
        "shard, overlap factor, process hand-off vs compute split), "
        "dendrogram-repair counters (merges spliced vs recomputed) and "
        "kernel dispatch (components on the numpy kernel) to each "
        "progress line",
    )

    fleet = sub.add_parser(
        "fleet",
        help="drive a fleet of machines through the asyncio aggregation tier",
    )
    fleet.add_argument(
        "--machines", type=int, default=3,
        help="number of simulated machines (each gets its own seeded trace)",
    )
    fleet.add_argument(
        "--profile", default="Linux-1",
        help="machine profile every fleet member runs "
        "(see repro.workload.machines.PROFILES)",
    )
    fleet.add_argument("--days", type=int, default=2)
    fleet.add_argument(
        "--seed", type=int, default=7,
        help="base trace seed; machine i streams the trace seeded seed+i",
    )
    fleet.add_argument(
        "--chunks", type=int, default=5,
        help="feed each machine's trace in this many chunks (one per round)",
    )
    fleet.add_argument("--window", type=float, default=1.0)
    fleet.add_argument("--threshold", type=float, default=2.0)
    fleet.add_argument(
        "--state", default=None, metavar="DIR",
        help="fleet checkpoint directory: resume from it if it exists, and "
        "write per-machine checkpoints plus a manifest back on exit",
    )
    fleet.add_argument(
        "--executor", choices=("serial", "thread"), default="serial",
        help="shard execution strategy shared by all machines (the process "
        "executor's worker-affinity cache is per-session state, so it is "
        "not offered here)",
    )
    fleet.add_argument(
        "--workers", type=_worker_count, default=None, metavar="N",
        help="worker count for --executor thread (ignored by serial)",
    )
    fleet.add_argument(
        "--max-lag", type=int, default=None, dest="max_lag", metavar="N",
        help="per-machine backpressure bound: stop feeding a machine once "
        "it has N journaled-but-unconsumed events (default: unbounded; "
        "with --scenario the flag overrides the config as a "
        "REPRO__FLEET__MAX_LAG environment override would)",
    )
    fleet.add_argument(
        "--scenario", default=None, metavar="YAML",
        help="drive a declarative scenario config instead of the ad-hoc "
        "fleet flags; the YAML (plus REPRO__* environment overrides) "
        "governs the population, regime, schedule and pipeline "
        "parameters, and the run is gated on the fleet merge equalling "
        "the concatenated-batch reference (needs the 'scenarios' extra; "
        "incompatible with --state)",
    )

    validate = sub.add_parser(
        "validate-scenarios",
        help="load every committed scenario YAML through the full "
        "three-layer config path (schema drift fails the command)",
    )
    validate.add_argument(
        "paths", nargs="*", metavar="YAML",
        help="scenario files to validate (default: scenarios/*.yaml)",
    )

    repair = sub.add_parser("repair", help="repair one Table III error")
    repair.add_argument("--case", type=int, required=True, choices=range(1, 17))
    repair.add_argument("--bfs", action="store_true", help="use BFS instead of DFS")
    repair.add_argument("--spurious", type=int, default=0, choices=(0, 1, 2))
    repair.add_argument("--days-before-end", type=float, default=14.0)
    repair.add_argument("--noclust", action="store_true", help="run the baseline")

    sub.add_parser("list-cases", help="list the 16 error cases")
    return parser


def _cmd_table1() -> str:
    from repro.experiments.table1 import render_table1, run_table1

    return render_table1(run_table1())


def _cmd_table2(args) -> str:
    from repro.experiments.table2 import render_table2, run_table2

    return render_table2(
        run_table2(
            window=args.window,
            correlation_threshold=args.threshold,
            days=args.days,
            seed=args.seed,
        )
    )


def _cmd_table3() -> str:
    from repro.experiments.table3 import render_table3

    return render_table3()


def _cmd_table4(args) -> str:
    from repro.experiments.recovery import render_table4, run_table4

    return render_table4(
        run_table4(exhaustive=not args.quick, with_noclust=not args.no_noclust)
    )


def _cmd_fig2(which: str, points) -> str:
    from repro.experiments import fig2

    runners = {
        "fig2a": (
            fig2.run_fig2a,
            "injection days",
            "Figure 2a: trials vs time of error",
        ),
        "fig2b": (
            fig2.run_fig2b,
            "spurious writes",
            "Figure 2b: trials vs spurious writes",
        ),
        "fig2c": (
            fig2.run_fig2c,
            "time bound (days)",
            "Figure 2c: trials vs search bound",
        ),
    }
    run, x_label, title = runners[which]
    if which == "fig2b":
        points = tuple(int(p) for p in points)
    series = run(points)
    return fig2.render_fig2(x_label, points, series, title)


def _cmd_fig3(which: str) -> str:
    from repro.experiments.fig3 import render_fig3, run_fig3a, run_fig3b

    if which == "fig3a":
        x, sizes = run_fig3a()
        return render_fig3(
            "window (s)", x, sizes, "Figure 3a: avg cluster size vs window"
        )
    x, sizes = run_fig3b()
    return render_fig3(
        "corr threshold", x, sizes, "Figure 3b: avg cluster size vs threshold"
    )


def _cmd_fig4(args) -> str:
    from repro.experiments.fig4 import render_fig4, run_fig4

    return render_fig4(run_fig4(seed=args.seed))


def _cmd_ablations() -> str:
    from repro.experiments.ablations import (
        render_ablations,
        run_linkage_ablation,
        run_quantisation_ablation,
        run_sort_ablation,
        run_window_ablation,
    )

    rows = []
    rows += run_window_ablation()
    rows += run_linkage_ablation()
    rows += run_sort_ablation()
    rows += run_quantisation_ablation()
    return render_ablations(rows)


def _stream_trace(args):
    """The generated trace and shard prefixes for the stream command."""
    from repro.apps.catalog import app_names
    from repro.experiments.table2 import lab_profile
    from repro.workload.machines import MachineProfile, PLATFORM_LINUX
    from repro.workload.tracegen import generate_trace

    if args.shards < 1:
        raise ValueError(f"--shards must be at least 1, got {args.shards}")
    if args.shards == 1:
        trace = generate_trace(lab_profile(args.app, days=args.days, seed=args.seed))
        apps = (args.app,)
    else:
        apps = (args.app,) + tuple(
            name for name in app_names() if name != args.app
        )[: args.shards - 1]
        if len(apps) < args.shards:
            raise ValueError(
                f"--shards {args.shards} exceeds the {len(apps)} known applications"
            )
        profile = MachineProfile(
            name=f"stream:{len(apps)}apps",
            platform=PLATFORM_LINUX,
            days=args.days,
            apps=apps,
            sessions_per_day=4,
            actions_per_session=10,
            pref_edits_per_day=2.0,
            noise_keys=50,
            noise_writes_per_day=120,
            reads_per_day=0,
            seed=args.seed,
        )
        trace = generate_trace(profile)
    if args.shard_prefixes is not None:
        prefixes = tuple(args.shard_prefixes)
    elif args.shards > 1:
        prefixes = tuple(trace.apps[name].key_prefix for name in apps)
    else:
        prefixes = ()
    return trace, apps, prefixes


def _ingest_suffix(ingest_seconds: float) -> str:
    """Ingest tail for one progress line (``--timings``).

    Covers journal append plus shard routing only — the pipeline compute
    and any process hand-off are reported separately by
    :func:`_timing_suffix`, so the three phases can be compared.
    """
    return f"; ingest {ingest_seconds * 1000:.1f}ms (append + routing)"


def _timing_suffix(stats) -> str:
    """Per-shard timing tail for one progress line (``--timings``)."""
    if not stats.shard_timings:
        return "; no shard ran"
    slowest = stats.slowest_shard
    label = slowest if slowest else "<catch-all>"
    kernel = (
        f"numpy kernel on {stats.kernel_components} component(s)"
        if stats.kernel_used
        else "python kernel"
    )
    compute = sum(stats.shard_timings.values())
    handoff = (
        f", hand-off {stats.handoff_seconds * 1000:.1f}ms vs "
        f"compute {compute * 1000:.1f}ms"
        if stats.handoff_seconds
        else ""
    )
    return (
        f"; slowest shard {label} "
        f"{stats.shard_timings[slowest] * 1000:.1f}ms, "
        f"{stats.parallel_speedup:.1f}x overlap{handoff}; "
        f"merges {stats.merges_reused} spliced/"
        f"{stats.merges_recomputed} recomputed; {kernel}"
    )


def _cmd_stream(args) -> str:
    import json
    import time
    from pathlib import Path

    from repro.core.executors import make_executor
    from repro.core.sharded import ShardedPipeline
    from repro.ttkv.store import TTKV

    trace, apps, prefixes = _stream_trace(args)
    events = trace.ttkv.write_events()
    state_path = Path(args.state) if args.state else None
    executor = make_executor(args.executor, args.workers)
    lines = []

    try:
        if state_path is not None and state_path.exists():
            # Resume: the deployment re-opens its recorded store and the
            # session picks up at its checkpointed cursors — consumed events
            # are never read again.
            from repro.fleet.checkpointing import load_json_checkpoint

            live = TTKV(journal_backend=args.journal or "list")
            ingest_start = time.perf_counter()
            live.record_events(events)
            ingest_seconds = time.perf_counter() - ingest_start
            pipeline = ShardedPipeline.from_state(
                live,
                load_json_checkpoint(state_path, kind="session checkpoint"),
                executor=executor,
                repair_mode=args.repair_mode,
                kernel=args.kernel,
                journal_backend=args.journal,
            )
            clusters = pipeline.update()
            stats = pipeline.last_stats
            lines.append(
                f"resumed session from {state_path} "
                "(checkpoint parameters take precedence)"
            )
            line = (
                f"  {stats.events_consumed} new event(s) consumed, "
                f"{len(events) - stats.events_consumed} already-read event(s) "
                f"skipped -> {len(clusters)} clusters "
                f"({len(clusters.multi_clusters())} multi-key)"
            )
            if args.timings:
                line += _ingest_suffix(ingest_seconds) + _timing_suffix(stats)
            lines.append(line)
        else:
            live = TTKV(journal_backend=args.journal or "list")
            pipeline = ShardedPipeline(
                live,
                shard_prefixes=prefixes,
                window=args.window,
                correlation_threshold=args.threshold,
                executor=executor,
                repair_mode=args.repair_mode or "splice",
                kernel=args.kernel or "auto",
                journal_backend=args.journal or "auto",
            )
            chunk_size = max(1, -(-len(events) // max(1, args.chunks)))
            chunks = -(-len(events) // chunk_size) if events else 0
            sharded = (
                f", sharded on {len(prefixes)} app prefix(es)" if prefixes else ""
            )
            concurrency = (
                f" [{args.executor} executor]" if args.executor != "serial" else ""
            )
            lines.append(
                f"streaming {len(events)} modification events from a "
                f"{args.days}-day trace of {len(apps)} app(s) in {chunks} "
                f"chunk(s){sharded}{concurrency}"
            )
            for start in range(0, len(events), chunk_size):
                ingest_start = time.perf_counter()
                live.record_events(events[start:start + chunk_size])
                ingest_seconds = time.perf_counter() - ingest_start
                clusters = pipeline.update()
                stats = pipeline.last_stats
                line = (
                    f"  +{stats.events_consumed:5d} events -> "
                    f"{len(clusters):4d} clusters "
                    f"({len(clusters.multi_clusters())} multi-key); "
                    f"{stats.components_reclustered}/{stats.components_total} "
                    "components re-agglomerated"
                )
                if stats.shards_total > 1:
                    line += (
                        f"; {stats.shards_updated}/{stats.shards_total} "
                        "shards updated"
                    )
                if args.timings:
                    line += _ingest_suffix(ingest_seconds) + _timing_suffix(stats)
                lines.append(line)

        if state_path is not None:
            from repro.fleet.checkpointing import atomic_write_json

            state_path.parent.mkdir(parents=True, exist_ok=True)
            # tmp+fsync+rename: a crash mid-write can never leave a torn
            # checkpoint at the final name
            atomic_write_json(state_path, pipeline.to_state())
            lines.append(f"session state checkpointed to {state_path}")
        pipeline.close()
    finally:
        executor.close()
    return "\n".join(lines)


def _cmd_fleet(args) -> str:
    import asyncio
    from pathlib import Path

    from repro.core.executors import make_executor
    from repro.fleet import FleetPipeline
    from repro.ttkv.store import TTKV
    from repro.workload.machines import profile_by_name
    from repro.workload.tracegen import generate_trace

    if args.machines < 1:
        raise ValueError(f"--machines must be at least 1, got {args.machines}")
    profile = profile_by_name(args.profile)
    machine_events: dict[str, list] = {}
    machine_prefixes: dict[str, tuple[str, ...]] = {}
    for index in range(args.machines):
        machine_id = f"m{index:03d}"
        trace = generate_trace(profile, days=args.days, seed=args.seed + index)
        machine_events[machine_id] = trace.ttkv.write_events()
        machine_prefixes[machine_id] = tuple(
            app.key_prefix for app in trace.apps.values()
        )
    total_events = sum(len(events) for events in machine_events.values())
    state_dir = Path(args.state) if args.state else None
    executor = make_executor(args.executor, args.workers)
    lines = []

    try:
        if state_dir is not None and (state_dir / "fleet.json").exists():
            # Resume: each machine re-opens its recorded store; the
            # restored sessions pick up at their checkpointed cursors and
            # the merge rebuilds from their live evidence snapshots.
            stores = {}
            for machine_id, events in machine_events.items():
                store = TTKV()
                store.record_events(events)
                stores[machine_id] = store
            fleet = FleetPipeline.from_state_dir(
                state_dir, stores, executor=executor, max_lag=args.max_lag
            )
            clusters = fleet.update()
            stats = fleet.last_stats
            lines.append(
                f"resumed fleet session from {state_dir} "
                f"({len(stores)} machine checkpoint(s))"
            )
            lines.append(
                f"  {stats.events_consumed} new event(s) consumed, "
                f"{total_events - stats.events_consumed} already-read "
                f"event(s) skipped -> {len(clusters)} fleet clusters "
                f"({len(clusters.multi_clusters())} multi-key)"
            )
        else:
            fleet = FleetPipeline(
                window=args.window,
                correlation_threshold=args.threshold,
                executor=executor,
                max_lag=args.max_lag,
            )
            for machine_id in machine_events:
                fleet.add_machine(
                    machine_id, TTKV(), machine_prefixes[machine_id]
                )
            concurrency = (
                f" [{args.executor} executor]"
                if args.executor != "serial"
                else ""
            )
            lines.append(
                f"fleet of {args.machines} machine(s) [{args.profile}] "
                f"streaming {total_events} events over {args.chunks} "
                f"round(s){concurrency}"
            )
            feeds = {}
            for machine_id, events in machine_events.items():
                size = max(1, -(-len(events) // max(1, args.chunks)))
                feeds[machine_id] = [
                    events[start : start + size]
                    for start in range(0, len(events), size)
                ]

            def on_round(report):
                lines.append(
                    f"  round {report.index}: +{report.events_fed:5d} events "
                    f"-> {len(report.clusters):4d} fleet clusters "
                    f"({len(report.clusters.multi_clusters())} multi-key); "
                    f"{report.machines_updated}/{report.machines_total} "
                    "machines updated; "
                    f"{report.merge.components_reclustered}/"
                    f"{report.merge.components_total} "
                    "fleet components re-agglomerated"
                )

            asyncio.run(fleet.drive(feeds, on_round=on_round))

        if state_dir is not None:
            fleet.to_state_dir(state_dir)
            lines.append(f"fleet state checkpointed to {state_dir}")
        fleet.close()
    finally:
        executor.close()
    return "\n".join(lines)


def _load_cli_scenario(path: str, extra_env: dict | None = None):
    """Load a scenario through all three layers, env overrides included.

    CLI flags that shadow config fields (``--max-lag``) are folded in as
    synthetic ``REPRO__*`` variables, so flag > environment > YAML >
    default precedence falls out of the one override mechanism.
    """
    import os

    from repro.scenarios import load_scenario

    env = dict(os.environ)
    if extra_env:
        env.update(extra_env)
    return load_scenario(path, env)


def _cmd_stream_scenario(args) -> str:
    from repro.core.executors import make_executor
    from repro.scenarios import build_scenario, run_stream_scenario

    if args.state is not None:
        raise ValueError(
            "--scenario and --state are incompatible: scenario runs are "
            "self-contained equality gates, not resumable sessions"
        )
    config = _load_cli_scenario(args.scenario)
    built = build_scenario(config)
    machine = built.machines[0]
    lines = [
        f"scenario {config.name!r} [{config.regime.kind}]: streaming "
        f"machine {machine.machine_id} ({machine.profile_name}), "
        f"{len(machine.delivery)} delivered event(s) on "
        f"{len(machine.shard_prefixes)} shard prefix(es)"
    ]

    def on_update(events_so_far: int, clusters: int) -> None:
        lines.append(
            f"  {events_so_far:6d} events -> {clusters:4d} clusters"
        )

    chunk_events = max(1, -(-len(machine.delivery) // max(1, args.chunks)))
    executor = make_executor(args.executor, args.workers)
    try:
        result = run_stream_scenario(
            built,
            chunk_events=chunk_events,
            executor=executor,
            on_update=on_update,
        )
    finally:
        executor.close()
    lines.append(
        f"  {result.updates} update(s); "
        f"{result.reorders_absorbed} reorder(s) absorbed, "
        f"{result.rebuilds} rebuild(s); "
        f"{len(result.clusters)} clusters "
        f"({len(result.clusters.multi_clusters())} multi-key)"
    )
    lines.append("  gate: incremental equals batch: passed")
    return "\n".join(lines)


def _cmd_fleet_scenario(args) -> str:
    from repro.core.executors import make_executor
    from repro.scenarios import build_scenario, run_fleet_scenario

    if args.state is not None:
        raise ValueError(
            "--scenario and --state are incompatible: scenario runs are "
            "self-contained equality gates, not resumable sessions"
        )
    extra_env = (
        {"REPRO__FLEET__MAX_LAG": str(args.max_lag)}
        if args.max_lag is not None
        else None
    )
    config = _load_cli_scenario(args.scenario, extra_env)
    built = build_scenario(config)
    population = ", ".join(
        f"{group.machines}x {group.profile}" for group in config.population
    )
    lines = [
        f"scenario {config.name!r} [{config.regime.kind}]: "
        f"{config.total_machines} machine(s) ({population}), "
        f"{built.total_events} event(s) over {config.fleet.rounds} "
        "scheduled round(s)"
        + (
            f", max_lag {config.fleet.max_lag}"
            if config.fleet.max_lag is not None
            else ""
        )
    ]

    def on_round(report) -> None:
        line = (
            f"  round {report.index}: +{report.events_fed:5d} events "
            f"-> {len(report.clusters):4d} fleet clusters "
            f"({len(report.clusters.multi_clusters())} multi-key); "
            f"{report.machines_updated}/{report.machines_total} "
            "machines updated"
        )
        if report.merge is not None:
            line += (
                f"; {report.merge.components_reclustered}/"
                f"{report.merge.components_total} "
                "fleet components re-agglomerated"
            )
        lines.append(line)

    executor = make_executor(args.executor, args.workers)
    try:
        result = run_fleet_scenario(built, executor=executor, on_round=on_round)
    finally:
        executor.close()
    lines.append(
        f"  {len(result.rounds)} round(s) driven, "
        f"{result.events_consumed} event(s) consumed, "
        f"{len(result.machines_final)} machine(s) attached at the end"
    )
    lines.append("  gate: fleet merge equals concatenated batch: passed")
    return "\n".join(lines)


def _cmd_validate_scenarios(args) -> str:
    from pathlib import Path

    from repro.scenarios import ScenarioConfigError, load_scenario

    paths = [Path(p) for p in args.paths] or sorted(
        Path("scenarios").glob("*.yaml")
    )
    if not paths:
        raise ValueError(
            "no scenario files found (looked in scenarios/*.yaml); "
            "pass explicit paths"
        )
    lines = []
    failures = []
    for path in paths:
        try:
            # env={}: validate the file exactly as committed, without
            # whatever REPRO__* happens to be set in this shell
            config = load_scenario(path, env={})
        except ScenarioConfigError as error:
            failures.append(str(error))
            lines.append(f"FAIL  {path}")
        else:
            lines.append(
                f"ok    {path}: {config.name!r} [{config.regime.kind}] "
                f"{config.total_machines} machine(s), "
                f"{config.fleet.rounds} round(s), seed {config.seed}"
            )
    if failures:
        raise SystemExit("\n".join(lines + [""] + failures))
    return "\n".join(lines)


def _cmd_repair(args) -> str:
    from repro.common.format import format_mmss
    from repro.core.search import SearchStrategy
    from repro.errors.cases import case_by_id
    from repro.experiments.recovery import run_case

    case = case_by_id(args.case)
    strategy = SearchStrategy.BFS if args.bfs else SearchStrategy.DFS
    report, scenario = run_case(
        case,
        strategy=strategy,
        days_before_end=args.days_before_end,
        spurious_writes=args.spurious,
        use_clustering=not args.noclust,
    )
    outcome = report.outcome
    lines = [
        f"error #{case.case_id} ({case.app_name}): {case.description}",
        f"trace: {case.trace_name}; strategy: {strategy.name}"
        + ("; baseline: Ocasta-NoClust" if args.noclust else ""),
    ]
    if report.fixed:
        lines.append(
            f"FIXED after {outcome.trials_to_fix} trials "
            f"({format_mmss(outcome.time_to_fix)} simulated), "
            f"{outcome.unique_screenshots} unique screenshot(s)"
        )
        lines.append(
            "offending cluster "
            f"({report.offending_cluster_size} setting(s)): "
            + ", ".join(sorted(report.offending_cluster.keys))
        )
    else:
        lines.append(
            f"NOT FIXED after {outcome.total_trials} trials — "
            "the rollback granularity cannot repair this error"
        )
    return "\n".join(lines)


def _cmd_list_cases() -> str:
    from repro.experiments.table3 import render_table3

    return render_table3()


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    command = args.command
    if command == "table1":
        output = _cmd_table1()
    elif command == "table2":
        output = _cmd_table2(args)
    elif command == "table3":
        output = _cmd_table3()
    elif command == "table4":
        output = _cmd_table4(args)
    elif command in ("fig2a", "fig2b", "fig2c"):
        output = _cmd_fig2(command, args.points)
    elif command in ("fig3a", "fig3b"):
        output = _cmd_fig3(command)
    elif command == "fig4":
        output = _cmd_fig4(args)
    elif command == "ablations":
        output = _cmd_ablations()
    elif command == "stream":
        output = (
            _cmd_stream_scenario(args) if args.scenario else _cmd_stream(args)
        )
    elif command == "fleet":
        output = (
            _cmd_fleet_scenario(args) if args.scenario else _cmd_fleet(args)
        )
    elif command == "validate-scenarios":
        output = _cmd_validate_scenarios(args)
    elif command == "repair":
        output = _cmd_repair(args)
    else:
        output = _cmd_list_cases()
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

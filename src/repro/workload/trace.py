"""Trace summary statistics (Table I's columns)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.format import SECONDS_PER_DAY, format_bytes, format_si
from repro.ttkv.store import TTKV


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one trace, in Table I's shape."""

    name: str
    days: float
    reads: int
    writes: int
    keys: int
    ttkv_size_bytes: int

    def row(self) -> list[str]:
        """Formatted Table I row: Name, Days, Reads, Writes, #Keys, Size."""
        return [
            self.name,
            f"{self.days:.0f}",
            format_si(self.reads),
            format_si(self.writes),
            f"{self.keys:,}",
            format_bytes(self.ttkv_size_bytes),
        ]


def compute_stats(name: str, ttkv: TTKV, days: float | None = None) -> TraceStats:
    """Compute Table I statistics from a TTKV.

    ``days`` defaults to the span of recorded modifications.  "Writes" in
    Table I counts modifications (writes + deletions), matching what the
    paper's logger records as write traffic.
    """
    if days is None:
        try:
            start, end = ttkv.span()
            days = max(1.0, (end - start) / SECONDS_PER_DAY)
        except Exception:
            days = 0.0
    return TraceStats(
        name=name,
        days=days,
        reads=ttkv.total_reads(),
        writes=ttkv.total_writes() + ttkv.total_deletes(),
        keys=len(ttkv),
        ttkv_size_bytes=ttkv.estimated_size_bytes(),
    )

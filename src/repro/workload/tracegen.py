"""Multi-day trace generation for one machine profile.

Ties together the simulated applications, the loggers, the user model and
a background "system noise" generator into a single TTKV trace whose
statistics mirror one row of Table I.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.apps.base import SimulatedApplication
from repro.apps.catalog import create_app
from repro.common.clock import SimClock
from repro.common.format import SECONDS_PER_DAY, quantize_timestamp
from repro.loggers.base import Logger, TIMESTAMP_PRECISION
from repro.workload.machines import MachineProfile, PLATFORM_WINDOWS
from repro.workload.user_model import UserModel
from repro.ttkv.store import TTKV


@dataclass
class GeneratedTrace:
    """A generated deployment trace: the TTKV plus the live environment."""

    profile: MachineProfile
    ttkv: TTKV
    apps: dict[str, SimulatedApplication]
    loggers: dict[str, Logger]
    clock: SimClock
    days: float
    noise_key_names: list[str] = field(default_factory=list)

    @property
    def end_time(self) -> float:
        return self.days * SECONDS_PER_DAY

    def app(self, name: str) -> SimulatedApplication:
        return self.apps[name]


def _noise_key_name(platform: str, index: int) -> str:
    if platform == PLATFORM_WINDOWS:
        service = index % 37
        return (
            f"HKLM\\System\\CurrentControlSet\\Services\\svc{service:02d}"
            f"\\Parameters\\Value{index}"
        )
    return f"/system/daemons/daemon{index % 23}/state/value{index}"


def generate_trace(
    profile: MachineProfile,
    days: float | None = None,
    precision: float = TIMESTAMP_PRECISION,
    scale: float = 1.0,
    seed: int | None = None,
) -> GeneratedTrace:
    """Generate a trace for ``profile``.

    Parameters
    ----------
    days:
        Override the profile's deployment length (shorter = faster tests).
    precision:
        Logger timestamp quantisation; 1.0 reproduces the paper's
        collector, 0 keeps exact times (for the Fig. 3a artifact analysis).
    scale:
        Multiplies activity volume (sessions, noise writes, reads).  Use
        <1 for quick tests.
    seed:
        Override the profile's RNG seed.
    """
    if days is None:
        days = float(profile.days)
    if days <= 0:
        raise ValueError("trace length must be positive")
    if not 0 < scale <= 10:
        raise ValueError("scale must be in (0, 10]")

    rng = random.Random(seed if seed is not None else profile.seed)
    clock = SimClock(0.0)
    ttkv = TTKV()

    apps: dict[str, SimulatedApplication] = {}
    loggers: dict[str, Logger] = {}
    users: dict[str, UserModel] = {}
    for app_name in profile.apps:
        app = create_app(app_name, clock=clock)
        apps[app_name] = app
        loggers[app_name] = app.attach_logger(ttkv, precision=precision)
        users[app_name] = UserModel(app, rng)

    noise_keys = [
        _noise_key_name(profile.platform, i) for i in range(profile.noise_keys)
    ]

    sessions_per_day = profile.sessions_per_day * scale
    noise_writes_per_day = int(profile.noise_writes_per_day * scale)
    reads_per_day = int(profile.reads_per_day * scale)

    for day in range(int(days)):
        day_start = day * SECONDS_PER_DAY
        _advance_to(clock, day_start + rng.uniform(6, 10) * 3600)

        # -- interactive sessions -------------------------------------------
        n_sessions = _poisson(rng, sessions_per_day)
        for _ in range(n_sessions):
            app_name = rng.choice(profile.apps)
            _advance_to(clock, clock.now() + rng.uniform(120, 5400))
            if clock.now() >= day_start + SECONDS_PER_DAY:
                break
            users[app_name].run_session(profile.actions_per_session)

        # -- preference edits -----------------------------------------------
        n_edits = _poisson(rng, profile.pref_edits_per_day * scale)
        for _ in range(n_edits):
            app_name = rng.choice(profile.apps)
            _advance_to(clock, clock.now() + rng.uniform(60, 3600))
            users[app_name].edit_preferences()

        # -- software updates (oversized-cluster source #2) ------------------
        for app_name in profile.apps:
            if rng.random() < profile.software_update_prob_per_day:
                _advance_to(clock, clock.now() + rng.uniform(30, 600))
                apps[app_name].software_update(rng, breadth=rng.randint(5, 20))

        # -- background system noise ----------------------------------------
        _generate_noise(
            ttkv, rng, noise_keys, noise_writes_per_day,
            day_start, precision,
        )
        _generate_bulk_reads(ttkv, rng, apps, noise_keys, reads_per_day)

        # park the clock at end of day so the next day starts cleanly
        if clock.now() < day_start + SECONDS_PER_DAY:
            _advance_to(clock, day_start + SECONDS_PER_DAY)

    return GeneratedTrace(
        profile=profile,
        ttkv=ttkv,
        apps=apps,
        loggers=loggers,
        clock=clock,
        days=days,
        noise_key_names=noise_keys,
    )


def _advance_to(clock: SimClock, target: float) -> None:
    if target > clock.now():
        clock.advance(target - clock.now())


def _poisson(rng: random.Random, mean: float) -> int:
    """Small-mean Poisson sample (Knuth's method)."""
    if mean <= 0:
        return 0
    import math

    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def _generate_noise(
    ttkv: TTKV,
    rng: random.Random,
    noise_keys: list[str],
    writes: int,
    day_start: float,
    precision: float,
) -> None:
    """System-service key writes, recorded directly into the TTKV.

    These bypass the application emulators (the paper's logger sees all
    processes, most of which we do not model one by one); they are spread
    over the day and heavily skewed toward a hot subset of keys, like real
    service churn.  Timestamps are pre-sorted because TTKV appends must be
    monotonic per key — one sorted pass keeps the whole-day batch valid.
    """
    if not noise_keys or writes <= 0:
        return
    hot = noise_keys[: max(1, len(noise_keys) // 20)]
    times = sorted(rng.uniform(0, SECONDS_PER_DAY) for _ in range(writes))
    for offset in times:
        key = rng.choice(hot) if rng.random() < 0.8 else rng.choice(noise_keys)
        timestamp = quantize_timestamp(day_start + offset, precision)
        ttkv.record_write(key, rng.randint(0, 1 << 16), timestamp)


def _generate_bulk_reads(
    ttkv: TTKV,
    rng: random.Random,
    apps: dict[str, SimulatedApplication],
    noise_keys: list[str],
    reads: int,
) -> None:
    """Bulk-account the day's read traffic (Table I's Reads column)."""
    if reads <= 0:
        return
    # ~30% of reads hit application settings, the rest system keys; when a
    # profile has no modelled system keys, applications take all of it.
    app_reads = int(reads * 0.3) if noise_keys else reads
    noise_reads = reads - app_reads
    all_app_keys = [
        app.canonical_key(name)
        for app in apps.values()
        for name in app.schema.names()
    ]
    if all_app_keys:
        _spread_reads(ttkv, rng, all_app_keys, app_reads)
    if noise_keys and noise_reads > 0:
        sample = rng.sample(noise_keys, k=min(len(noise_keys), 200))
        _spread_reads(ttkv, rng, sample, noise_reads)


def _spread_reads(
    ttkv: TTKV, rng: random.Random, keys: list[str], total: int
) -> None:
    """Distribute ``total`` reads over ``keys``, preserving the total.

    Per-key counts get ±30% jitter; the running remainder is carried so
    the day's total stays on target (Table I's read volumes are the point
    of this accounting).
    """
    if total <= 0 or not keys:
        return
    base = total / len(keys)
    assigned = 0
    for index, key in enumerate(keys):
        if index == len(keys) - 1:
            count = total - assigned
        else:
            count = int(base * rng.uniform(0.7, 1.3))
        count = max(0, min(count, total - assigned))
        if count:
            ttkv.record_reads(key, count)
            assigned += count

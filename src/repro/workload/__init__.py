"""Synthetic workload generation.

The paper deploys loggers on 29 desktop machines used by real people for
18–84 days (Table I).  This package replaces the deployment with a seeded
stochastic user model driving the simulated applications, producing traces
whose summary statistics land in the ranges Table I reports and whose
dynamics exercise the same clustering signal and failure modes.
"""

from repro.workload.machines import MachineProfile, PROFILES, profile_by_name
from repro.workload.user_model import UserModel, UserBehaviour
from repro.workload.tracegen import GeneratedTrace, generate_trace
from repro.workload.trace import TraceStats, compute_stats

__all__ = [
    "MachineProfile",
    "PROFILES",
    "profile_by_name",
    "UserModel",
    "UserBehaviour",
    "GeneratedTrace",
    "generate_trace",
    "TraceStats",
    "compute_stats",
]

"""Machine/trace profiles mirroring Table I of the paper.

Each profile describes one deployment: platform, length in days, the
applications in use, and activity rates tuned so the generated trace's
summary statistics (reads, writes, key counts, TTKV size) land in the same
ranges as the paper's measured traces.  The Linux profiles are per-user
aggregations, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

PLATFORM_WINDOWS = "windows"
PLATFORM_LINUX = "linux"


@dataclass(frozen=True)
class MachineProfile:
    """One row of Table I, as generation parameters.

    ``noise_keys`` is the pool of non-application system keys (services,
    other software) that pad the trace's key count up to Table I's #Keys;
    ``noise_writes_per_day`` drives the write volume those keys see;
    ``reads_per_day`` is bulk-accounted read traffic.
    """

    name: str
    platform: str
    days: int
    apps: tuple[str, ...]
    sessions_per_day: float
    actions_per_session: int
    pref_edits_per_day: float
    noise_keys: int
    noise_writes_per_day: int
    reads_per_day: int
    software_update_prob_per_day: float = 0.02
    seed: int = 0
    # Paper-reported values, kept for side-by-side reporting only.
    paper_reads: str = ""
    paper_writes: str = ""
    paper_keys: int = 0
    paper_size: str = ""
    extras: dict = field(default_factory=dict, compare=False)


_WINDOWS_APPS = (
    "MS Outlook",
    "Internet Explorer",
    "MS Word",
    "MS Paint",
    "Explorer",
    "Windows Media Player",
)

PROFILES: tuple[MachineProfile, ...] = (
    MachineProfile(
        name="Windows 7", platform=PLATFORM_WINDOWS, days=42,
        apps=_WINDOWS_APPS, sessions_per_day=5, actions_per_session=12,
        pref_edits_per_day=1.5, noise_keys=3500, noise_writes_per_day=1500,
        reads_per_day=161_000, seed=71,
        paper_reads="6.76M", paper_writes="67.72K", paper_keys=4611, paper_size="85MB",
    ),
    MachineProfile(
        name="Windows Vista", platform=PLATFORM_WINDOWS, days=53,
        apps=_WINDOWS_APPS, sessions_per_day=3, actions_per_session=8,
        pref_edits_per_day=0.8, noise_keys=13_600, noise_writes_per_day=330,
        reads_per_day=65_000, seed=72,
        paper_reads="3.46M", paper_writes="20.5K", paper_keys=14_673, paper_size="29MB",
    ),
    MachineProfile(
        name="Windows Vista-2", platform=PLATFORM_WINDOWS, days=18,
        apps=("Internet Explorer", "Explorer", "Windows Media Player"),
        sessions_per_day=8, actions_per_session=20,
        pref_edits_per_day=2.0, noise_keys=620, noise_writes_per_day=12_300,
        reads_per_day=838_000, seed=73,
        paper_reads="15.08M",
        paper_writes="224.64K",
        paper_keys=1123,
        paper_size="6.3MB",
    ),
    MachineProfile(
        name="Windows XP", platform=PLATFORM_WINDOWS, days=25,
        apps=_WINDOWS_APPS, sessions_per_day=7, actions_per_session=18,
        pref_edits_per_day=2.5, noise_keys=13_600, noise_writes_per_day=12_300,
        reads_per_day=912_000, seed=74,
        paper_reads="22.80M",
        paper_writes="311.9K",
        paper_keys=14_667,
        paper_size="24MB",
    ),
    MachineProfile(
        name="Windows XP-2", platform=PLATFORM_WINDOWS, days=32,
        apps=_WINDOWS_APPS, sessions_per_day=7, actions_per_session=16,
        pref_edits_per_day=2.0, noise_keys=18_400, noise_writes_per_day=8_300,
        reads_per_day=836_000, seed=75,
        paper_reads="26.76M",
        paper_writes="268.96K",
        paper_keys=19_501,
        paper_size="46MB",
    ),
    MachineProfile(
        name="Linux-1", platform=PLATFORM_LINUX, days=25,
        apps=("Evolution Mail", "Eye of GNOME", "GNOME Edit"),
        sessions_per_day=4, actions_per_session=10,
        pref_edits_per_day=2.5, noise_keys=1400, noise_writes_per_day=100,
        reads_per_day=3_660, seed=81,
        paper_reads="91.52K", paper_writes="3.34K", paper_keys=1660, paper_size="6MB",
    ),
    MachineProfile(
        name="Linux-2", platform=PLATFORM_LINUX, days=84,
        apps=("Chrome Browser",), sessions_per_day=0.8, actions_per_session=6,
        pref_edits_per_day=0.15, noise_keys=0, noise_writes_per_day=2,
        reads_per_day=97, seed=82,
        paper_reads="8.15K", paper_writes="0.48K", paper_keys=35, paper_size="0.1MB",
    ),
    MachineProfile(
        name="Linux-3", platform=PLATFORM_LINUX, days=46,
        apps=("Acrobat Reader",), sessions_per_day=0.6, actions_per_session=6,
        pref_edits_per_day=0.12, noise_keys=0, noise_writes_per_day=2,
        reads_per_day=1_140, seed=83,
        paper_reads="52.41K", paper_writes="0.44K", paper_keys=706, paper_size="0.7MB",
    ),
    MachineProfile(
        name="Linux-4", platform=PLATFORM_LINUX, days=64,
        apps=("Acrobat Reader",), sessions_per_day=2.5, actions_per_session=14,
        pref_edits_per_day=0.8, noise_keys=0, noise_writes_per_day=25,
        reads_per_day=7_900, seed=84,
        paper_reads="507.07K", paper_writes="5.43K", paper_keys=751, paper_size="6.4MB",
    ),
)


def profile_by_name(name: str) -> MachineProfile:
    for profile in PROFILES:
        if profile.name == name:
            return profile
    raise ValueError(
        f"unknown machine profile {name!r}; known: {[p.name for p in PROFILES]}"
    )

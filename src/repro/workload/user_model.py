"""The stochastic user model.

Drives one application through a session the way the paper's traced users
did: launch (a burst of reads), ordinary activity (MRU churn, state-key
writes, legal partial group updates), and occasional preference edits.
Preference edits are where the clustering signal comes from: a coherent
dependency-group update writes its members within milliseconds of each
other, while *bursty* users apply several preference pages at once and
collide unrelated groups inside the collector's 1-second timestamp
granularity — the paper's main source of oversized clusters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apps.base import SimulatedApplication
from repro.common.clock import SimClock


@dataclass(frozen=True)
class UserBehaviour:
    """Tunable behaviour of the simulated user."""

    think_time_range: tuple[float, float] = (2.0, 45.0)
    document_open_prob: float = 0.35
    partial_update_prob: float = 0.15
    burst_gap_range: tuple[float, float] = (0.05, 0.6)
    documents: tuple[str, ...] = (
        "report.doc", "notes.txt", "thesis.pdf", "budget.xls",
        "photo.png", "clip.avi", "draft.doc", "paper.pdf",
    )


class UserModel:
    """Replays user sessions against one application."""

    def __init__(
        self,
        app: SimulatedApplication,
        rng: random.Random,
        behaviour: UserBehaviour | None = None,
    ) -> None:
        self.app = app
        self.rng = rng
        self.behaviour = behaviour if behaviour is not None else UserBehaviour()

    @property
    def clock(self) -> SimClock:
        return self.app.clock

    def _think(self) -> None:
        self.clock.advance(self.rng.uniform(*self.behaviour.think_time_range))

    def run_session(self, actions: int) -> None:
        """One usage session: launch, then ``actions`` activity steps."""
        self.app.launch()
        for _ in range(max(1, actions)):
            self._think()
            roll = self.rng.random()
            if roll < self.behaviour.document_open_prob:
                self.app.open_document(self.rng.choice(self.behaviour.documents))
            elif roll < (
                self.behaviour.document_open_prob
                + self.behaviour.partial_update_prob
            ):
                self.app.partial_group_update(self.rng)
            else:
                self.app.activity(self.rng, intensity=self.rng.randint(1, 3))
        self.app.close_document()

    def edit_preferences(self) -> None:
        """A visit to the preferences dialog.

        With probability ``app.pref_burst_prob`` the user applies more than
        one preference change nearly simultaneously (several dialog pages
        committed by one OK click) — unrelated groups then land within the
        same quantised second.
        """
        self._think()
        self.app.change_preference(self.rng)
        burst_prob = getattr(self.app, "pref_burst_prob", 0.1)
        while self.rng.random() < burst_prob:
            self.clock.advance(self.rng.uniform(*self.behaviour.burst_gap_range))
            self.app.change_preference(self.rng)

"""Experiment drivers: one module per paper table/figure.

The benchmark harness (``benchmarks/``) and the examples call these; they
return structured results and render the same rows/series the paper
reports.
"""

from repro.experiments.table1 import run_table1, render_table1
from repro.experiments.table2 import run_table2, render_table2
from repro.experiments.table3 import render_table3
from repro.experiments.recovery import (
    CaseResult,
    run_case,
    run_table4,
    render_table4,
)
from repro.experiments.fig2 import (
    run_fig2a,
    run_fig2b,
    run_fig2c,
    render_fig2,
)
from repro.experiments.fig3 import run_fig3a, run_fig3b, render_fig3
from repro.experiments.fig4 import run_fig4, render_fig4

__all__ = [
    "run_table1",
    "render_table1",
    "run_table2",
    "render_table2",
    "render_table3",
    "CaseResult",
    "run_case",
    "run_table4",
    "render_table4",
    "run_fig2a",
    "run_fig2b",
    "run_fig2c",
    "render_fig2",
    "run_fig3a",
    "run_fig3b",
    "render_fig3",
    "run_fig4",
    "render_fig4",
]

"""Table II: clustering accuracy per application.

Each application is exercised on a dedicated "lab" deployment (same user
model as the Table I machines) and its clustering is scored against the
schema's ground-truth dependency groups.
"""

from __future__ import annotations

from repro.analysis.tables import ascii_table, format_percent
from repro.common.hashing import stable_hash
from repro.apps.catalog import APP_FACTORIES, app_names
from repro.core.accuracy import (
    ClusteringReport,
    evaluate_clustering,
    mean_accuracy,
    overall_accuracy,
)
from repro.core.sharded import ShardedPipeline
from repro.workload.machines import MachineProfile, PLATFORM_LINUX
from repro.workload.tracegen import GeneratedTrace, generate_trace


def lab_profile(app_name: str, days: int = 45, seed: int = 7) -> MachineProfile:
    """A single-application deployment used to exercise clustering."""
    return MachineProfile(
        name=f"lab:{app_name}",
        platform=PLATFORM_LINUX,
        days=days,
        apps=(app_name,),
        sessions_per_day=4,
        actions_per_session=10,
        pref_edits_per_day=2.0,
        noise_keys=0,
        noise_writes_per_day=0,
        reads_per_day=2000,
        seed=seed + stable_hash(app_name, mask=0xFF),
    )


def evaluate_app(
    app_name: str,
    trace: GeneratedTrace | None = None,
    window: float = 1.0,
    correlation_threshold: float = 2.0,
    days: int = 45,
    seed: int = 7,
    executor=None,
) -> ClusteringReport:
    """Cluster one application's trace and score it (one Table II row).

    ``executor`` optionally drives the shard update through a
    :class:`~repro.core.executors.ShardExecutor` (caller-owned) — one
    pool can then serve all eleven rows.
    """
    if trace is None:
        trace = generate_trace(lab_profile(app_name, days=days, seed=seed))
    app = trace.apps[app_name]
    # One-shot consumption of the trace through the streaming pipeline,
    # sharded on the application's prefix — equivalent to batch
    # cluster_settings with key_filter, and the path a live deployment
    # would be on when the table is regenerated mid-recording.
    pipeline = ShardedPipeline(
        trace.ttkv,
        shard_prefixes=(app.key_prefix,),
        window=window,
        correlation_threshold=correlation_threshold,
        catch_all=False,
        executor=executor,
    )
    try:
        cluster_set = pipeline.update()
    finally:
        # one-shot consumption: detach so a reused trace store does not
        # keep feeding an abandoned session
        pipeline.close()
    return evaluate_clustering(
        app_name,
        cluster_set,
        app.canonical_ground_truth_groups(),
        total_keys=len(app.schema),
    )


def run_table2(
    window: float = 1.0,
    correlation_threshold: float = 2.0,
    days: int = 45,
    seed: int = 7,
    executor=None,
) -> list[ClusteringReport]:
    """All eleven Table II rows (one shared ``executor``, if given)."""
    return [
        evaluate_app(
            name,
            window=window,
            correlation_threshold=correlation_threshold,
            days=days,
            seed=seed,
            executor=executor,
        )
        for name in app_names()
    ]


def render_table2(reports: list[ClusteringReport]) -> str:
    headers = [
        "Application", "#Keys", "#Clusters", "%Accuracy", "paper:%Accuracy",
    ]
    rows = []
    for report in reports:
        info = APP_FACTORIES[report.app_name]
        rows.append(
            [
                report.app_name,
                report.total_keys,
                f"{report.multi_clusters}/{report.total_clusters}",
                format_percent(report.accuracy),
                format_percent(info.paper_accuracy),
            ]
        )
    total_keys = sum(r.total_keys for r in reports)
    total_multi = sum(r.multi_clusters for r in reports)
    total_all = sum(r.total_clusters for r in reports)
    rows.append(
        [
            "Total",
            total_keys,
            f"{total_multi}/{total_all}",
            format_percent(overall_accuracy(reports)),
            "88.6%",
        ]
    )
    table = ascii_table(headers, rows, title="Table II: clustering accuracy")
    mean = mean_accuracy(reports)
    return (
        table
        + f"\nmean per-app accuracy: {format_percent(mean)} (paper: 72.3%)"
    )

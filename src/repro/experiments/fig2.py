"""Figure 2: DFS vs BFS search behaviour.

(a) average trials vs how long ago the error was injected;
(b) average trials vs number of spurious writes after the error;
(c) average trials vs the start-time bound of the search.
"""

from __future__ import annotations

from repro.analysis.tables import series_table
from repro.core.search import SearchStrategy
from repro.errors.cases import ERROR_CASES, ErrorCase
from repro.experiments.recovery import run_case

#: default case subset: all sixteen, as the paper sweeps
DEFAULT_CASES = tuple(ERROR_CASES)

_STRATEGIES = (SearchStrategy.BFS, SearchStrategy.DFS)


def _average_trials(
    cases: tuple[ErrorCase, ...],
    strategy: SearchStrategy,
    **kwargs,
) -> float:
    """Mean trials-to-fix over the cases (failed searches count all trials)."""
    totals = []
    for case in cases:
        report, _scenario = run_case(case, strategy=strategy, **kwargs)
        trials = report.outcome.trials_to_fix
        if trials is None:
            trials = report.outcome.total_trials
        totals.append(trials)
    return sum(totals) / len(totals)


def run_fig2a(
    injection_days: tuple[float, ...] = (2, 6, 10, 14),
    cases: tuple[ErrorCase, ...] = DEFAULT_CASES,
    scale: float = 1.0,
) -> dict[str, list[float]]:
    """Trials vs injection age; start bound stays at the injection."""
    series: dict[str, list[float]] = {s.name: [] for s in _STRATEGIES}
    for days in injection_days:
        for strategy in _STRATEGIES:
            series[strategy.name].append(
                _average_trials(
                    cases, strategy, days_before_end=days, scale=scale
                )
            )
    return series


def run_fig2b(
    spurious_counts: tuple[int, ...] = (0, 1, 2),
    cases: tuple[ErrorCase, ...] = DEFAULT_CASES,
    scale: float = 1.0,
) -> dict[str, list[float]]:
    """Trials vs spurious fix attempts after the injected error."""
    series: dict[str, list[float]] = {s.name: [] for s in _STRATEGIES}
    for count in spurious_counts:
        for strategy in _STRATEGIES:
            series[strategy.name].append(
                _average_trials(
                    cases, strategy, spurious_writes=count, scale=scale
                )
            )
    return series


def run_fig2c(
    bound_days: tuple[float, ...] = (10, 20, 40, 80),
    cases: tuple[ErrorCase, ...] = DEFAULT_CASES,
    scale: float = 1.0,
    error_age_days: float = 7.0,
) -> dict[str, list[float]]:
    """Trials vs the user-supplied start-time bound.

    The error sits ``error_age_days`` before the end — inside even the
    narrowest bound, so the fix is always reachable; the search window
    opens wider and wider into the past (capped at the trace start), so
    the candidate pool — and with it the number of trials — grows.
    """
    if error_age_days >= min(bound_days):
        raise ValueError(
            "the error must lie inside the narrowest search bound; "
            f"got age {error_age_days} vs bounds {bound_days}"
        )
    series: dict[str, list[float]] = {s.name: [] for s in _STRATEGIES}
    for days in bound_days:
        for strategy in _STRATEGIES:
            totals = []
            for case in cases:
                report, scenario = run_case(
                    case,
                    strategy=strategy,
                    days_before_end=error_age_days,
                    start_bound_days=days,
                    scale=scale,
                )
                trials = report.outcome.trials_to_fix
                if trials is None:
                    trials = report.outcome.total_trials
                totals.append(trials)
            series[strategy.name].append(sum(totals) / len(totals))
    return series


def render_fig2(
    x_label: str,
    x_values: tuple,
    series: dict[str, list[float]],
    title: str,
) -> str:
    return series_table(x_label, list(x_values), series, title=title)

"""Figure 3: sensitivity of average cluster size.

(a) to the sliding-window size (0–600 s).  The paper's collector records
    timestamps at 1-second precision, so the window=0 point — where only
    identical timestamps group — collapses multi-key updates that straddle
    a second boundary, producing the sharp drop on the left of the plot.
(b) to the clustering threshold (correlation 0.5–2).
"""

from __future__ import annotations

from repro.analysis.tables import series_table
from repro.core.pipeline import cluster_settings
from repro.experiments.table2 import lab_profile
from repro.workload.tracegen import GeneratedTrace, generate_trace

#: window sweep points, seconds (paper's x-axis reaches 600)
WINDOW_POINTS = (0.0, 1.0, 5.0, 30.0, 60.0, 120.0, 300.0, 600.0)
#: threshold sweep points, correlation units
THRESHOLD_POINTS = (0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0)

#: a representative application mix: registry, GConf and file flavours,
#: accurate and page-fused dialogs, small and large schemas
DEFAULT_APPS = (
    "MS Outlook",
    "Chrome Browser",
    "Acrobat Reader",
    "Explorer",
    "Windows Media Player",
)


def _traces(apps: tuple[str, ...], days: int, seed: int) -> list[GeneratedTrace]:
    return [
        generate_trace(lab_profile(name, days=days, seed=seed))
        for name in apps
    ]


def _average_cluster_size(
    traces: list[GeneratedTrace],
    window: float,
    threshold: float,
) -> float:
    """Mean multi-cluster size pooled over the applications."""
    total = 0
    count = 0
    for trace in traces:
        app = next(iter(trace.apps.values()))
        cluster_set = cluster_settings(
            trace.ttkv,
            window=window,
            correlation_threshold=threshold,
            key_filter=app.key_prefix,
        )
        for cluster in cluster_set.multi_clusters():
            total += len(cluster)
            count += 1
    return total / count if count else 0.0


def run_fig3a(
    apps: tuple[str, ...] = DEFAULT_APPS,
    windows: tuple[float, ...] = WINDOW_POINTS,
    threshold: float = 2.0,
    days: int = 45,
    seed: int = 7,
) -> tuple[tuple[float, ...], list[float]]:
    """Average cluster size vs window size."""
    traces = _traces(apps, days, seed)
    sizes = [_average_cluster_size(traces, w, threshold) for w in windows]
    return windows, sizes


def run_fig3b(
    apps: tuple[str, ...] = DEFAULT_APPS,
    thresholds: tuple[float, ...] = THRESHOLD_POINTS,
    window: float = 1.0,
    days: int = 45,
    seed: int = 7,
) -> tuple[tuple[float, ...], list[float]]:
    """Average cluster size vs clustering threshold."""
    traces = _traces(apps, days, seed)
    sizes = [_average_cluster_size(traces, window, t) for t in thresholds]
    return thresholds, sizes


def render_fig3(
    x_label: str, x_values: tuple[float, ...], sizes: list[float], title: str
) -> str:
    return series_table(
        x_label, list(x_values), {"avg cluster size": sizes}, title=title
    )

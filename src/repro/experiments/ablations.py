"""Ablations of Ocasta's design choices (DESIGN.md §5).

Four choices the paper makes implicitly or explicitly, each compared
against its alternatives on the same traces:

- **window semantics** — gap-based *sliding* sessionisation (ours/paper)
  vs fixed aligned buckets;
- **linkage criterion** — complete/maximum (paper, citing prior work)
  vs single vs average;
- **cluster sort** — ascending modification count (paper) vs pure recency
  vs clustering order;
- **timestamp quantisation** — the collector's 1-second precision vs
  exact timestamps, measured at window 0 (the Fig. 3a artifact).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import ascii_table
from repro.core.accuracy import evaluate_clustering, overall_accuracy
from repro.core.clustering import LINKAGE_AVERAGE, LINKAGE_COMPLETE, LINKAGE_SINGLE
from repro.core.pipeline import cluster_settings
from repro.core.search import SearchStrategy
from repro.core.sorting import SORT_MODCOUNT, SORT_NONE, SORT_RECENCY
from repro.errors.cases import case_by_id
from repro.errors.scenario import prepare_scenario
from repro.experiments.table2 import lab_profile
from repro.repair.controller import OcastaRepairTool
from repro.workload.tracegen import generate_trace

#: apps used for the clustering-side ablations; Evolution's page-apply
#: bursts are what differentiate the linkage criteria (single linkage
#: chains across burst-shared keys)
ABLATION_APPS = ("MS Outlook", "Chrome Browser", "Explorer", "Evolution Mail")
#: single-key error cases used for the sort ablation (fast traces)
SORT_CASE_IDS = (12, 13, 14)


@dataclass(frozen=True)
class AblationRow:
    name: str
    variant: str
    metric: str
    value: float


def _accuracy_for(traces, **kwargs) -> float:
    reports = []
    for trace in traces:
        app = next(iter(trace.apps.values()))
        clusters = cluster_settings(
            trace.ttkv, key_filter=app.key_prefix, **kwargs
        )
        reports.append(
            evaluate_clustering(
                app.name, clusters, app.canonical_ground_truth_groups()
            )
        )
    value = overall_accuracy(reports)
    return 0.0 if value is None else value


def run_window_ablation(days: int = 45, seed: int = 7) -> list[AblationRow]:
    """Sliding sessionisation vs fixed buckets, accuracy at the defaults."""
    traces = [
        generate_trace(lab_profile(a, days=days, seed=seed))
        for a in ABLATION_APPS
    ]
    return [
        AblationRow(
            "window semantics", grouping, "overall accuracy",
            _accuracy_for(traces, grouping=grouping),
        )
        for grouping in ("sliding", "buckets")
    ]


def run_linkage_ablation(days: int = 45, seed: int = 7) -> list[AblationRow]:
    """Complete vs single vs average linkage.

    Measured at correlation threshold 1: at the default threshold 2
    "always modified together" is an equivalence relation, so every
    linkage criterion produces identical clusters and the ablation would
    be vacuous.  Threshold 1 is where chaining behaviour differs (and is
    the setting the paper's tuned recoveries use).
    """
    traces = [
        generate_trace(lab_profile(a, days=days, seed=seed))
        for a in ABLATION_APPS
    ]
    return [
        AblationRow(
            "linkage @ threshold 1", linkage, "overall accuracy",
            _accuracy_for(traces, correlation_threshold=1.0, linkage=linkage),
        )
        for linkage in (LINKAGE_COMPLETE, LINKAGE_SINGLE, LINKAGE_AVERAGE)
    ]


def run_sort_ablation(days: int = 30, seed: int = 11) -> list[AblationRow]:
    """Cluster prioritisation: trials-to-fix under each sort policy."""
    rows = []
    for policy in (SORT_MODCOUNT, SORT_RECENCY, SORT_NONE):
        total_trials = 0
        for case_id in SORT_CASE_IDS:
            case = case_by_id(case_id)
            trace = generate_trace(
                lab_profile(case.app_name, days=days, seed=seed)
            )
            scenario = prepare_scenario(trace, case, days_before_end=10)
            tool = OcastaRepairTool(
                scenario.app, scenario.ttkv, sort_policy=policy
            )
            report = tool.repair(
                scenario.trial,
                scenario.is_fixed,
                start_time=scenario.injection_time,
                strategy=SearchStrategy.DFS,
            )
            trials = report.outcome.trials_to_fix
            total_trials += (
                trials if trials is not None else report.outcome.total_trials
            )
        rows.append(
            AblationRow(
                "cluster sort", policy, "avg trials to fix",
                total_trials / len(SORT_CASE_IDS),
            )
        )
    return rows


def run_quantisation_ablation(days: int = 45, seed: int = 7) -> list[AblationRow]:
    """1-second collector timestamps vs exact times, at window 0.

    With exact timestamps, window 0 keeps multi-key updates apart (each
    write has its own microsecond), devastating the clustering signal; a
    1-second quantiser accidentally restores most of it.  This is the
    flip side of the paper's Fig. 3a discussion.
    """
    rows = []
    for precision, label in ((1.0, "1-second"), (0.0, "exact")):
        traces = [
            generate_trace(
                lab_profile(a, days=days, seed=seed), precision=precision
            )
            for a in ABLATION_APPS
        ]
        rows.append(
            AblationRow(
                "timestamp quantisation", label,
                "overall accuracy @ window 0",
                _accuracy_for(traces, window=0.0),
            )
        )
    return rows


def render_ablations(rows: list[AblationRow]) -> str:
    return ascii_table(
        ["ablation", "variant", "metric", "value"],
        [[r.name, r.variant, r.metric, f"{r.value:.2f}"] for r in rows],
        title="Design-choice ablations",
    )

"""Table I: summary statistics of the nine deployment traces."""

from __future__ import annotations

from repro.analysis.tables import ascii_table
from repro.workload.machines import PROFILES, MachineProfile
from repro.workload.trace import TraceStats, compute_stats
from repro.workload.tracegen import generate_trace


def run_table1(
    profiles: tuple[MachineProfile, ...] = PROFILES,
    scale: float = 1.0,
    days: float | None = None,
) -> list[tuple[TraceStats, MachineProfile]]:
    """Generate every machine trace and compute its Table I row."""
    results = []
    for profile in profiles:
        trace = generate_trace(profile, scale=scale, days=days)
        stats = compute_stats(profile.name, trace.ttkv, trace.days)
        results.append((stats, profile))
    return results


def render_table1(results: list[tuple[TraceStats, MachineProfile]]) -> str:
    """Side-by-side measured vs paper-reported trace statistics."""
    headers = [
        "Name", "Days", "Reads", "Writes", "#Keys", "Size",
        "paper:Reads", "paper:Writes", "paper:#Keys", "paper:Size",
    ]
    rows = []
    for stats, profile in results:
        rows.append(
            stats.row()
            + [
                profile.paper_reads,
                profile.paper_writes,
                f"{profile.paper_keys:,}",
                profile.paper_size,
            ]
        )
    return ascii_table(headers, rows, title="Table I: trace statistics")

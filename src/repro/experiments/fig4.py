"""Figure 4: user-study time, Ocasta vs manual repair."""

from __future__ import annotations

from repro.analysis.tables import ascii_table
from repro.common.format import format_mmss
from repro.study.user_study import STUDY_CASE_IDS, StudyResult, run_user_study


def run_fig4(
    screenshots_per_case: dict[int, int] | None = None, seed: int = 19
) -> StudyResult:
    return run_user_study(
        screenshots_per_case=screenshots_per_case, seed=seed
    )


def render_fig4(result: StudyResult) -> str:
    headers = ["Case", "Ocasta (avg)", "Manual (avg)", "Manual fix rate"]
    rows = []
    for case_id in STUDY_CASE_IDS:
        case = result.cases[case_id]
        rows.append(
            [
                case_id,
                format_mmss(case.avg_ocasta_time),
                format_mmss(case.avg_manual_time),
                f"{case.manual_fix_rate * 100:.0f}%",
            ]
        )
    table = ascii_table(
        headers, rows, title="Figure 4: Ocasta vs manual repair time"
    )
    trial_dist = result.rating_distribution("trial")
    select_dist = result.rating_distribution("selection")
    lines = [
        table,
        "trial-creation difficulty ratings: "
        + ", ".join(f"{k}:{v * 100:.0f}%" for k, v in trial_dist.items() if v)
        + "  (paper: 1:74%, 2:21%, 3:5%)",
        "screenshot-selection difficulty ratings: "
        + ", ".join(f"{k}:{v * 100:.0f}%" for k, v in select_dist.items() if v)
        + "  (paper: 1:80%, 2:11%, 3:8%, 4:1%)",
    ]
    return "\n".join(lines)

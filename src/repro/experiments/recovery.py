"""Table IV: recovery performance on the sixteen errors.

For each error: prepare the scenario on its machine trace, run Ocasta's
DFS search (exhaustively, to measure both time-to-fix and total search
time), and run the Ocasta-NoClust baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.analysis.tables import ascii_table
from repro.common.format import format_mmss
from repro.core.search import SearchStrategy
from repro.errors.cases import ERROR_CASES, ErrorCase
from repro.errors.scenario import ErrorScenario, prepare_scenario
from repro.repair.controller import OcastaRepairTool, RepairReport
from repro.workload.machines import profile_by_name
from repro.workload.tracegen import GeneratedTrace, generate_trace


@lru_cache(maxsize=None)
def trace_for(trace_name: str, scale: float = 1.0) -> GeneratedTrace:
    """Generate (once) the machine trace an error case runs on."""
    return generate_trace(profile_by_name(trace_name), scale=scale)


@dataclass
class CaseResult:
    """One Table IV row."""

    case: ErrorCase
    ocasta: RepairReport
    noclust: RepairReport | None

    @property
    def cluster_size(self) -> int | None:
        return self.ocasta.offending_cluster_size

    def row(self) -> list:
        outcome = self.ocasta.outcome
        return [
            self.case.case_id,
            self.cluster_size if self.cluster_size is not None else "-",
            outcome.trials_to_fix if outcome.trials_to_fix is not None else "-",
            (
                f"{format_mmss(outcome.time_to_fix)}/{format_mmss(outcome.total_time)}"
                if outcome.time_to_fix is not None
                else f"-/{format_mmss(outcome.total_time)}"
            ),
            outcome.unique_screenshots,
            "Y" if self.ocasta.fixed else "N",
            ("Y" if self.noclust.fixed else "N") if self.noclust else "-",
        ]


def run_case(
    case: ErrorCase,
    trace: GeneratedTrace | None = None,
    strategy: SearchStrategy = SearchStrategy.DFS,
    days_before_end: float = 14.0,
    spurious_writes: int = 0,
    use_clustering: bool = True,
    use_tuned_parameters: bool = True,
    exhaustive: bool = False,
    start_at_injection: bool = True,
    start_bound_days: float | None = None,
    scale: float = 1.0,
) -> tuple[RepairReport, ErrorScenario]:
    """Prepare and repair one error case; returns the report and scenario.

    ``start_at_injection`` sets the search start bound to the injection
    time (the paper's Table IV setup).  ``start_bound_days`` instead opens
    the search window that many days before the trace end (Fig. 2c's
    sweep); it overrides ``start_at_injection``.
    """
    if trace is None:
        trace = trace_for(case.trace_name, scale)
    scenario = prepare_scenario(
        trace,
        case,
        days_before_end=days_before_end,
        spurious_writes=spurious_writes,
    )
    window = scenario.window if use_tuned_parameters else 1.0
    threshold = scenario.correlation_threshold if use_tuned_parameters else 2.0
    tool = OcastaRepairTool(
        scenario.app,
        scenario.ttkv,
        window=window,
        correlation_threshold=threshold,
        use_clustering=use_clustering,
    )
    if start_bound_days is not None:
        from repro.common.format import SECONDS_PER_DAY

        start_time = max(0.0, scenario.end_time - start_bound_days * SECONDS_PER_DAY)
    elif start_at_injection:
        start_time = scenario.injection_time
    else:
        start_time = None
    report = tool.repair(
        scenario.trial,
        scenario.is_fixed,
        start_time=start_time,
        strategy=strategy,
        exhaustive=exhaustive,
    )
    return report, scenario


def run_table4(
    scale: float = 1.0,
    exhaustive: bool = True,
    with_noclust: bool = True,
) -> list[CaseResult]:
    """All sixteen rows, DFS, injection 14 days before the trace end."""
    results = []
    for case in ERROR_CASES:
        ocasta, _ = run_case(case, exhaustive=exhaustive, scale=scale)
        noclust = None
        if with_noclust:
            noclust, _ = run_case(case, use_clustering=False, scale=scale)
        results.append(CaseResult(case=case, ocasta=ocasta, noclust=noclust))
    return results


def render_table4(results: list[CaseResult]) -> str:
    headers = [
        "Case", "Cl.Size", "Trials", "Time(mm:ss)", "Screens", "Ocasta", "NoClust",
    ]
    rows = [result.row() for result in results]
    fixed = sum(1 for r in results if r.ocasta.fixed)
    noclust_fixed = sum(1 for r in results if r.noclust and r.noclust.fixed)
    table = ascii_table(headers, rows, title="Table IV: recovery performance")
    return (
        table
        + f"\nOcasta fixed {fixed}/16 (paper: 16/16), "
        + f"NoClust fixed {noclust_fixed}/16 (paper: 11/16)"
    )

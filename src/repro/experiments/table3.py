"""Table III: the sixteen real-world configuration errors."""

from __future__ import annotations

from repro.analysis.tables import ascii_table
from repro.errors.cases import ERROR_CASES


def render_table3() -> str:
    headers = ["Case", "Trace", "Application", "Logger", "Description"]
    rows = [
        [case.case_id, case.trace_name, case.app_name, case.logger, case.description]
        for case in ERROR_CASES
    ]
    return ascii_table(headers, rows, title="Table III: configuration errors")

"""Sharded vs global streaming clustering on a multi-application trace.

The scenario is the paper's deployment reality taken to a busy multi-app
machine: five applications plus system noise share one store, clustering
runs continuously, and most updates only concern whichever application is
in the foreground.  We warm both pipelines on 99% of the merged stream,
then append the remaining tail — which lands in a single hot application —
in slices, timing each ``update()``:

- **global**: one unsharded :class:`IncrementalPipeline` over the whole
  store.  Every update works inside one big correlation matrix whose
  window-straddling noise bridges applications into large components.
- **sharded**: a :class:`ShardedPipeline` with one shard per application
  prefix (noise in the catch-all).  Updates touch only shards whose
  journals advanced, and each shard's components stay application-sized.

Every shard's output is asserted exactly equal to the batch
``cluster_settings(store, key_filter=prefix)`` reference (the catch-all
against the prefix-free remainder of the stream).  The union-find's
component-scan win is measured separately on the hot shard's matrix:
``connected_components(method="scan")`` (the old graph traversal) vs the
incrementally maintained ``method="unionfind"``.

Run as a script for CI/quick use::

    python benchmarks/bench_sharded.py --quick --out benchmarks/out/BENCH_sharded.json

or through the benchmark harness (``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.incremental import IncrementalPipeline
from repro.core.pipeline import cluster_settings
from repro.core.sharded import ShardedPipeline
from repro.ttkv.sharding import CATCH_ALL
from repro.ttkv.store import TTKV
from repro.workload.machines import MachineProfile, PLATFORM_LINUX
from repro.workload.tracegen import generate_trace

#: The applications sharing the benchmark machine (all Linux-flavoured).
APPS = (
    "Chrome Browser",
    "GNOME Edit",
    "Eye of GNOME",
    "Acrobat Reader",
    "Evolution Mail",
)

#: Fraction of the stream appended after the pipelines are warm.
TAIL_FRACTION = 0.01

#: How many update() calls the tail is spread over.
TAIL_SLICES = 20

#: Trace-generation seed; recorded in the JSON so the CI regression gate
#: only ever compares runs over the identical trace.
SEED = 2024


def _profile(quick: bool) -> MachineProfile:
    return MachineProfile(
        name="bench-sharded",
        platform=PLATFORM_LINUX,
        days=6 if quick else 32,
        apps=APPS,
        sessions_per_day=6,
        actions_per_session=12,
        pref_edits_per_day=3.0,
        noise_keys=80 if quick else 150,
        noise_writes_per_day=400 if quick else 1300,
        reads_per_day=0,
        seed=SEED,
    )


def _key_sets(cluster_set) -> list[tuple[str, ...]]:
    return [tuple(cluster.sorted_keys()) for cluster in cluster_set]


def _hot_tail(events: list[tuple], prefixes: tuple[str, ...]) -> int:
    """Split index such that the tail is dominated by one hot application.

    The tail starts at the last TAIL_FRACTION of the *hot app's* events —
    interleaved noise/foreign events before the global split stay in the
    warm prefix, so the appended slices overwhelmingly hit one shard.
    """
    hot = prefixes[0]
    hot_positions = [i for i, event in enumerate(events) if event[1].startswith(hot)]
    tail_count = max(1, int(len(hot_positions) * TAIL_FRACTION))
    return hot_positions[-tail_count]


def run_benchmark(quick: bool = False) -> dict:
    trace = generate_trace(_profile(quick))
    prefixes = tuple(trace.apps[name].key_prefix for name in APPS)
    events = trace.ttkv.write_events()
    split = _hot_tail(events, prefixes)
    base, tail = events[:split], events[split:]
    slice_size = max(1, -(-len(tail) // TAIL_SLICES))

    # -- global (unsharded) session ------------------------------------------
    global_store = TTKV()
    global_store.record_events(base)
    global_pipeline = IncrementalPipeline(global_store)
    global_pipeline.update()  # warm
    global_seconds = 0.0
    for start in range(0, len(tail), slice_size):
        global_store.record_events(tail[start:start + slice_size])
        elapsed, _ = _timed(global_pipeline.update)
        global_seconds += elapsed

    # -- sharded session -----------------------------------------------------
    sharded_store = TTKV()
    sharded_pipeline = ShardedPipeline(sharded_store, shard_prefixes=prefixes)
    sharded_store.record_events(base)
    sharded_pipeline.update()  # warm
    sharded_seconds = 0.0
    shards_updated = 0
    updates = 0
    for start in range(0, len(tail), slice_size):
        sharded_store.record_events(tail[start:start + slice_size])
        elapsed, _ = _timed(sharded_pipeline.update)
        sharded_seconds += elapsed
        shards_updated += sharded_pipeline.last_stats.shards_updated
        updates += 1

    # -- exact equality with the batch reference, per shard ------------------
    full_store = TTKV()
    full_store.record_events(events)
    equal = True
    for prefix in prefixes:
        batch = cluster_settings(full_store, key_filter=prefix)
        if _key_sets(sharded_pipeline.cluster_set_for(prefix)) != _key_sets(batch):
            equal = False
    leftover = TTKV.from_events(
        [e for e in events if not any(e[1].startswith(p) for p in prefixes)]
    )
    if _key_sets(sharded_pipeline.cluster_set_for(CATCH_ALL)) != _key_sets(
        cluster_settings(leftover)
    ):
        equal = False

    # -- union-find vs graph-traversal component scan (hot shard) ------------
    hot_matrix = sharded_pipeline.matrix_for(prefixes[0])
    repeats = 50 if quick else 200
    scan_seconds = min(
        _timed(lambda: hot_matrix.connected_components(method="scan"))[0]
        for _ in range(repeats)
    )
    unionfind_seconds = min(
        _timed(lambda: hot_matrix.connected_components(method="unionfind"))[0]
        for _ in range(repeats)
    )
    components_agree = sorted(
        map(sorted, hot_matrix.connected_components(method="scan"))
    ) == sorted(map(sorted, hot_matrix.connected_components(method="unionfind")))

    record = {
        "events": len(events),
        "tail_events": len(tail),
        "apps": len(APPS),
        "app_prefixes": list(prefixes),
        "seed": SEED,
        "quick": quick,
        "tail_updates": updates,
        "global_seconds": global_seconds,
        "sharded_seconds": sharded_seconds,
        "speedup": global_seconds / sharded_seconds if sharded_seconds else float("inf"),
        "mean_shards_updated": shards_updated / updates if updates else 0.0,
        "shards_total": len(sharded_pipeline.shard_ids),
        "unionfind_scan_seconds": scan_seconds,
        "unionfind_seconds": unionfind_seconds,
        "unionfind_speedup": (
            scan_seconds / unionfind_seconds if unionfind_seconds else float("inf")
        ),
        "clusters": len(sharded_pipeline.cluster_set),
        "sharded_equals_batch": equal,
        "components_agree": components_agree,
    }
    sharded_pipeline.close()
    global_pipeline.close()
    return record


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def render(record: dict) -> str:
    return (
        "sharded vs global streaming clustering "
        f"({record['events']} events, {record['apps']} apps, "
        f"{record['tail_events']} appended over {record['tail_updates']} updates):\n"
        f"  global update total  : {record['global_seconds'] * 1000:8.2f} ms\n"
        f"  sharded update total : {record['sharded_seconds'] * 1000:8.2f} ms\n"
        f"  speedup              : {record['speedup']:8.1f}x "
        f"(mean {record['mean_shards_updated']:.1f}/{record['shards_total']} "
        "shards updated)\n"
        f"  component scan       : {record['unionfind_scan_seconds'] * 1e6:8.1f} us "
        f"(traversal) vs {record['unionfind_seconds'] * 1e6:.1f} us (union-find), "
        f"{record['unionfind_speedup']:.1f}x\n"
        f"  clusters             : {record['clusters']}; "
        f"equal to batch per prefix: {record['sharded_equals_batch']}"
    )


def test_sharded_speedup(benchmark, report):
    record = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    report("bench_sharded", render(record))
    (Path(__file__).parent / "out" / "BENCH_sharded.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    assert record["sharded_equals_batch"]
    assert record["components_agree"]
    assert record["events"] >= 40_000
    assert record["speedup"] >= 2.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small trace, no speedup gate")
    parser.add_argument("--out", type=Path, default=None, help="write the JSON record here")
    args = parser.parse_args(argv)
    record = run_benchmark(quick=args.quick)
    print(render(record))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    if not record["sharded_equals_batch"]:
        print("ERROR: sharded clusters diverged from batch", file=sys.stderr)
        return 1
    if not record["components_agree"]:
        print("ERROR: union-find components diverged from the scan", file=sys.stderr)
        return 1
    if not args.quick and record["events"] < 40_000:
        print("ERROR: trace below the 40k-event acceptance floor", file=sys.stderr)
        return 1
    if not args.quick and record["speedup"] < 2.0:
        print("ERROR: sharded speedup below the 2x acceptance floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

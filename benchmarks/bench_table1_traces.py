"""Table I: generate the nine deployment traces and report their statistics."""

from repro.experiments.table1 import render_table1, run_table1


def test_table1_trace_statistics(benchmark, report):
    results = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    report("table1", render_table1(results))

    stats = {s.name: s for s, _ in results}
    profiles = {p.name: p for _, p in results}

    # Shape checks against the paper's Table I, not absolute equality:
    # key counts should land near the reported ones, read/write volumes
    # within the same order of magnitude.
    for name, stat in stats.items():
        paper = profiles[name]
        assert stat.keys == len(set()) or stat.keys > 0
        assert 0.4 * paper.paper_keys <= stat.keys <= 1.6 * paper.paper_keys, name
    # Windows traces dwarf Linux ones in reads, as in the paper.
    assert stats["Windows XP"].reads > 100 * stats["Linux-1"].reads
    # Linux-2 is the smallest trace.
    assert min(stats.values(), key=lambda s: s.keys).name == "Linux-2"

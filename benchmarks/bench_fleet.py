"""Fleet aggregation: incremental merge vs a serial per-machine rebuild loop.

The scenario is the deployment story the paper implies at fleet scale:
many machines log concurrently, but at any instant only a few are active
— most of the fleet is quiet.  Both arms warm on the bulk of every
machine's trace, then the remaining tail lands in per-round slices that
each hit a *single* (rotating) machine:

- **naive**: the pre-fleet-tier aggregation — every round walks all
  machines serially, then rebuilds the fleet model from scratch (sum all
  machines' evidence snapshots into a fresh matrix, re-agglomerate every
  component).
- **fleet**: :class:`repro.fleet.FleetPipeline.update` — ``needs_update()``
  polls skip the quiet machines, the
  :class:`~repro.fleet.merge.FleetCorrelationMerge` applies only the hot
  machine's evidence *diff*, and only fleet components that diff touched
  re-agglomerate.

The headline ``fleet_speedup`` is the within-run ratio of the two arms'
update totals (machine-speed variance cancels).  Two invariants gate the
run: the fleet model equals the naive from-scratch model after every
round (``fleet_equals_naive``), and the final model equals the
independent concatenated-batch reference
(:func:`repro.fleet.merge.concatenated_batch_clusters`,
``fleet_equals_batch``).

Run as a script for CI/quick use::

    python benchmarks/bench_fleet.py --quick --out benchmarks/out/BENCH_fleet.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.clustering import flat_clusters
from repro.core.correlation import CorrelationMatrix
from repro.core.sharded import ShardedPipeline
from repro.fleet import FleetPipeline, concatenated_batch_clusters
from repro.ttkv.store import TTKV
from repro.workload.machines import MachineProfile, PLATFORM_LINUX
from repro.workload.tracegen import generate_trace

#: The applications every fleet machine runs (duplicate prefixes across
#: machines: fleet evidence sums on canonical key identity).
APPS = (
    "Chrome Browser",
    "GNOME Edit",
    "Eye of GNOME",
    "Acrobat Reader",
)

#: Fraction of each machine's stream appended after the warm-up.
TAIL_FRACTION = 0.05

#: Trace-generation seed; recorded in the JSON so the CI regression gate
#: only ever compares runs over the identical traces.
SEED = 4099


def _profile(quick: bool, seed: int) -> MachineProfile:
    return MachineProfile(
        name="bench-fleet",
        platform=PLATFORM_LINUX,
        days=3 if quick else 12,
        apps=APPS,
        sessions_per_day=5,
        actions_per_session=10,
        pref_edits_per_day=3.0,
        noise_keys=60 if quick else 120,
        noise_writes_per_day=250 if quick else 800,
        reads_per_day=0,
        seed=seed,
    )


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _key_sets(cluster_set) -> list[tuple[str, ...]]:
    return sorted(tuple(cluster.sorted_keys()) for cluster in cluster_set)


def _naive_model(pipelines, correlation_threshold=2.0):
    """From-scratch fleet aggregation: sum every snapshot, recut everything."""
    matrix = CorrelationMatrix()
    for pipeline in pipelines.values():
        counts, common = pipeline.pairwise_counts()
        matrix.apply_count_deltas(counts, common)
    return sorted(
        tuple(sorted(keys))
        for keys in flat_clusters(
            matrix, correlation_threshold=correlation_threshold
        )
    )


def run_benchmark(quick: bool = False) -> dict:
    machines = 4 if quick else 8
    rounds_target = 24 if quick else 60

    machine_events: dict[str, list] = {}
    machine_prefixes: dict[str, tuple[str, ...]] = {}
    for index in range(machines):
        machine_id = f"m{index:03d}"
        trace = generate_trace(_profile(quick, SEED + index))
        machine_events[machine_id] = trace.ttkv.write_events()
        machine_prefixes[machine_id] = tuple(
            trace.apps[name].key_prefix for name in APPS
        )
    total_events = sum(len(events) for events in machine_events.values())

    splits = {
        machine_id: int(len(events) * (1.0 - TAIL_FRACTION))
        for machine_id, events in machine_events.items()
    }
    tails = {
        machine_id: events[splits[machine_id] :]
        for machine_id, events in machine_events.items()
    }
    # per-round slices, one (rotating) hot machine per round
    per_machine_rounds = max(1, rounds_target // machines)
    slices: list[tuple[str, list]] = []
    for turn in range(per_machine_rounds):
        for machine_id, tail in tails.items():
            size = max(1, -(-len(tail) // per_machine_rounds))
            part = tail[turn * size : (turn + 1) * size]
            if part:
                slices.append((machine_id, part))

    # -- naive arm: serial walk + from-scratch aggregation every round -------
    naive_stores = {m: TTKV() for m in machine_events}
    naive_pipelines = {
        m: ShardedPipeline(naive_stores[m], machine_prefixes[m])
        for m in machine_events
    }
    for machine_id, events in machine_events.items():
        naive_stores[machine_id].record_events(events[: splits[machine_id]])
        naive_pipelines[machine_id].update()  # warm
    _naive_model(naive_pipelines)  # warm the aggregation path too
    naive_seconds = 0.0
    naive_models = []
    for machine_id, part in slices:
        naive_stores[machine_id].record_events(part)

        def naive_round():
            for pipeline in naive_pipelines.values():
                pipeline.update()
            return _naive_model(naive_pipelines)

        elapsed, model = _timed(naive_round)
        naive_seconds += elapsed
        naive_models.append(model)

    # -- fleet arm: needs_update polling + incremental evidence merge --------
    fleet_stores = {m: TTKV() for m in machine_events}
    fleet = FleetPipeline()
    for machine_id in machine_events:
        fleet.add_machine(
            machine_id, fleet_stores[machine_id], machine_prefixes[machine_id]
        )
    for machine_id, events in machine_events.items():
        fleet_stores[machine_id].record_events(events[: splits[machine_id]])
    fleet.update()  # warm
    fleet_seconds = 0.0
    machines_updated = 0
    fleet_equals_naive = True
    for round_index, (machine_id, part) in enumerate(slices):
        fleet_stores[machine_id].record_events(part)
        elapsed, clusters = _timed(fleet.update)
        fleet_seconds += elapsed
        machines_updated += fleet.last_stats.machines_updated
        if _key_sets(clusters) != naive_models[round_index]:
            fleet_equals_naive = False

    reference = sorted(
        tuple(sorted(keys))
        for keys in concatenated_batch_clusters(
            machine_events, machine_prefixes
        )
    )
    fleet_equals_batch = _key_sets(fleet.clusters()) == reference

    record = {
        "events": total_events,
        "tail_events": sum(len(part) for _, part in slices),
        "machines": machines,
        "rounds": len(slices),
        "seed": SEED,
        "quick": quick,
        "naive_seconds": naive_seconds,
        "fleet_seconds": fleet_seconds,
        "fleet_speedup": (
            naive_seconds / fleet_seconds if fleet_seconds else float("inf")
        ),
        "fleet_events_per_second": (
            sum(len(part) for _, part in slices) / fleet_seconds
            if fleet_seconds
            else float("inf")
        ),
        "mean_machines_updated": (
            machines_updated / len(slices) if slices else 0.0
        ),
        "clusters": len(fleet.clusters()),
        "fleet_equals_naive": fleet_equals_naive,
        "fleet_equals_batch": fleet_equals_batch,
    }
    fleet.close()
    for pipeline in naive_pipelines.values():
        pipeline.close()
    return record


def render(record: dict) -> str:
    return (
        "fleet incremental merge vs serial per-machine rebuild "
        f"({record['machines']} machines, {record['events']} events, "
        f"{record['tail_events']} appended over {record['rounds']} rounds):\n"
        f"  naive update total   : {record['naive_seconds'] * 1000:8.2f} ms\n"
        f"  fleet update total   : {record['fleet_seconds'] * 1000:8.2f} ms\n"
        f"  fleet speedup        : {record['fleet_speedup']:8.1f}x "
        f"(mean {record['mean_machines_updated']:.1f}/{record['machines']} "
        "machines updated per round)\n"
        f"  fleet throughput     : {record['fleet_events_per_second']:8.0f} "
        "tail events/s\n"
        f"  clusters             : {record['clusters']}; "
        f"equal to naive per round: {record['fleet_equals_naive']}; "
        f"equal to concatenated batch: {record['fleet_equals_batch']}"
    )


def test_fleet_speedup(benchmark, report):
    record = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    report("bench_fleet", render(record))
    (Path(__file__).parent / "out" / "BENCH_fleet.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    assert record["fleet_equals_naive"]
    assert record["fleet_equals_batch"]
    assert record["fleet_speedup"] >= 2.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small traces, no speedup gate"
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the JSON record here"
    )
    args = parser.parse_args(argv)
    record = run_benchmark(quick=args.quick)
    print(render(record))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    if not record["fleet_equals_naive"]:
        print("ERROR: fleet merge diverged from the naive rebuild", file=sys.stderr)
        return 1
    if not record["fleet_equals_batch"]:
        print(
            "ERROR: fleet merge diverged from the concatenated batch",
            file=sys.stderr,
        )
        return 1
    if not args.quick and record["fleet_speedup"] < 2.0:
        print("ERROR: fleet speedup below the 2x acceptance floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

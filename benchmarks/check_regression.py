"""CI benchmark-regression gate: compare BENCH_*.json against baselines.

Each quick-mode benchmark publishes a JSON record into ``benchmarks/out/``;
committed reference records live in ``benchmarks/baselines/``.  This script
fails (exit 1) when a headline metric of any current record is more than
``--tolerance`` (default 25%) worse than its baseline, when a correctness
invariant is false, or when the run is not comparable to the baseline in
the first place (different trace seed or event count — the gate only ever
compares like with like).

Headline metrics are deliberately *ratios* (incremental-vs-batch speedup,
sharded-vs-global speedup, union-find-vs-scan speedup, thread-vs-serial
wall ratio, splice-vs-rebuild repair speedup, numpy-kernel-vs-Python
agglomeration speedup, fleet-merge-vs-serial-rebuild speedup): ratios
measured within one run cancel out most
of the machine-to-machine absolute-speed variance that makes wall-clock
gates flaky on shared CI runners.

Usage::

    python benchmarks/bench_incremental.py --quick --out benchmarks/out/BENCH_incremental.json
    python benchmarks/bench_sharded.py     --quick --out benchmarks/out/BENCH_sharded.json
    python benchmarks/bench_parallel.py    --quick --out benchmarks/out/BENCH_parallel.json
    python benchmarks/bench_splice.py      --quick --out benchmarks/out/BENCH_splice.json
    python benchmarks/bench_kernel.py      --quick --out benchmarks/out/BENCH_kernel.json
    python benchmarks/bench_ingest.py      --quick --out benchmarks/out/BENCH_ingest.json
    python benchmarks/bench_fleet.py       --quick --out benchmarks/out/BENCH_fleet.json
    python benchmarks/bench_adversarial.py --quick --out benchmarks/out/BENCH_adversarial.json
    python benchmarks/bench_faults.py      --quick --out benchmarks/out/BENCH_faults.json
    python benchmarks/check_regression.py

Refreshing a baseline (after a deliberate perf change) is the same run
with the output redirected at ``benchmarks/baselines/`` — commit the
result and say why in the commit message.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Per-benchmark gate specification.
#:
#: ``headline``   — (metric, direction) pairs; ``higher`` means a drop
#:                  beyond tolerance fails, ``lower`` means a rise does.
#: ``invariants`` — boolean fields that must be true in the current run.
#: ``identity``   — fields that must match the baseline exactly for the
#:                  comparison to be meaningful (seeds, trace size).
GATES: dict[str, dict] = {
    "BENCH_incremental.json": {
        "headline": [("speedup", "higher")],
        "invariants": ["incremental_equals_batch"],
        "identity": ["events", "seeds", "quick"],
    },
    "BENCH_sharded.json": {
        "headline": [("speedup", "higher"), ("unionfind_speedup", "higher")],
        "invariants": ["sharded_equals_batch", "components_agree"],
        "identity": ["events", "seed", "quick"],
    },
    "BENCH_parallel.json": {
        "headline": [
            ("thread_speedup", "higher"),
            ("process_speedup", "higher"),
            ("large_kernel_speedup", "higher"),
            ("checkpoint_bytes", "lower"),
        ],
        "invariants": [
            "executors_agree",
            "matches_batch",
            "large_executors_agree",
            "deployment_checkpoint_flat",
        ],
        "identity": ["events", "seed", "workers", "quick", "large_events"],
    },
    "BENCH_splice.json": {
        "headline": [("splice_speedup", "higher")],
        "invariants": ["splice_equals_rebuild", "splice_equals_batch"],
        "identity": ["events", "seed", "quick"],
    },
    "BENCH_kernel.json": {
        "headline": [("kernel_speedup", "higher")],
        "invariants": ["kernels_agree"],
        "identity": ["seed", "quick", "sizes"],
    },
    "BENCH_ingest.json": {
        "headline": [
            ("ingest_speedup", "higher"),
            ("ingest_throughput", "higher"),
            ("resume_speedup", "higher"),
            ("slice_bytes", "lower"),
        ],
        "invariants": ["columnar_equals_list"],
        "identity": ["seed", "quick", "groups", "events"],
    },
    "BENCH_fleet.json": {
        "headline": [("fleet_speedup", "higher")],
        "invariants": ["fleet_equals_naive", "fleet_equals_batch"],
        "identity": ["events", "seed", "machines", "quick"],
    },
    "BENCH_faults.json": {
        "headline": [
            ("fault_overhead", "lower"),
            ("recovery_rounds", "lower"),
        ],
        "invariants": [
            "faulted_equals_batch",
            "faulted_matches_clean_each_round",
            "deterministic_schedule",
        ],
        # the fault schedule is a pure function of fault_seed, so the
        # injected-fault count is identity, not a metric
        "identity": [
            "events", "seed", "fault_seed", "machines", "quick",
            "faults_injected",
        ],
    },
    "BENCH_adversarial.json": {
        "headline": [("merge_speedup", "higher")],
        "invariants": [
            "flash_crowd_equal_to_batch",
            "churn_storm_equal_to_batch",
            "clock_skew_equal_to_batch",
            "heterogeneous_equal_to_batch",
            "clock_skew_flood_exercised",
        ],
        "identity": ["events", "seeds", "machines", "quick"],
    },
}

DEFAULT_TOLERANCE = 0.25


def _load(path: Path) -> dict | None:
    if not path.is_file():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def check_record(
    name: str,
    current: dict | None,
    baseline: dict | None,
    tolerance: float,
) -> list[str]:
    """All gate violations for one benchmark (empty list: pass)."""
    spec = GATES[name]
    if current is None:
        return [f"{name}: no current record — did the benchmark run?"]
    if baseline is None:
        return [
            f"{name}: no committed baseline — run the benchmark with "
            "--out benchmarks/baselines/" + name + " and commit it"
        ]
    failures = []
    for field in spec["identity"]:
        if current.get(field) != baseline.get(field):
            failures.append(
                f"{name}: {field} changed ({baseline.get(field)!r} -> "
                f"{current.get(field)!r}); the baseline no longer matches "
                "this trace — refresh benchmarks/baselines/"
            )
    if failures:
        return failures
    for field in spec["invariants"]:
        if not current.get(field):
            failures.append(f"{name}: invariant {field} is false")
    for metric, direction in spec["headline"]:
        now = current.get(metric)
        ref = baseline.get(metric)
        if not isinstance(now, (int, float)) or not isinstance(ref, (int, float)):
            failures.append(
                f"{name}: headline metric {metric} missing "
                f"(current={now!r}, baseline={ref!r})"
            )
            continue
        if direction == "higher":
            floor = ref * (1.0 - tolerance)
            if now < floor:
                failures.append(
                    f"{name}: {metric} regressed {ref:.3f} -> {now:.3f} "
                    f"(more than {tolerance:.0%} below baseline)"
                )
        else:
            ceiling = ref * (1.0 + tolerance)
            if now > ceiling:
                failures.append(
                    f"{name}: {metric} regressed {ref:.3f} -> {now:.3f} "
                    f"(more than {tolerance:.0%} above baseline)"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir", type=Path, default=Path(__file__).parent / "out",
        help="directory holding the freshly produced BENCH_*.json records",
    )
    parser.add_argument(
        "--baseline-dir", type=Path,
        default=Path(__file__).parent / "baselines",
        help="directory holding the committed baseline records",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed relative slack on headline metrics (default 0.25)",
    )
    args = parser.parse_args(argv)

    all_failures = []
    for name, spec in GATES.items():
        current = _load(args.out_dir / name)
        baseline = _load(args.baseline_dir / name)
        failures = check_record(name, current, baseline, args.tolerance)
        if failures:
            all_failures.extend(failures)
            for failure in failures:
                print(f"FAIL  {failure}", file=sys.stderr)
        else:
            summary = ", ".join(
                f"{metric} {current[metric]:.2f} (baseline "
                f"{baseline[metric]:.2f})"
                for metric, _ in spec["headline"]
            )
            print(f"ok    {name}: {summary}")
    if all_failures:
        print(
            f"\n{len(all_failures)} benchmark gate violation(s)",
            file=sys.stderr,
        )
        return 1
    print("\nall benchmark gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 4: the simulated 19-participant user study."""

from repro.experiments.fig4 import render_fig4, run_fig4
from repro.study.user_study import MANUAL_CUTOFF_SECONDS, STUDY_CASE_IDS


def test_fig4_user_study(benchmark, report):
    result = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    report("fig4", render_fig4(result))

    # Ocasta saves the user significant effort on errors 11/13/15...
    for case_id in (11, 13, 15):
        case = result.cases[case_id]
        assert case.avg_ocasta_time < 0.6 * case.avg_manual_time
    # ...while case 16 is the one most participants fix manually,
    # lowering its average manual time (the paper's caveat).
    sixteen = result.cases[16]
    assert sixteen.manual_fix_rate > 0.5
    assert sixteen.avg_manual_time < MANUAL_CUTOFF_SECONDS

    # Difficulty ratings match the paper's aggregate shape: trial
    # creation rated "easiest" about three quarters of the time,
    # screenshot selection about four fifths.
    trial_dist = result.rating_distribution("trial")
    select_dist = result.rating_distribution("selection")
    assert trial_dist[1] > 0.5
    assert select_dist[1] > 0.5
    assert set(result.cases) == set(STUDY_CASE_IDS)

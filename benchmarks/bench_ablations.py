"""Ablation benchmarks for the design choices DESIGN.md §5 calls out."""

from repro.experiments.ablations import (
    render_ablations,
    run_linkage_ablation,
    run_quantisation_ablation,
    run_sort_ablation,
    run_window_ablation,
)


def test_ablation_window_semantics(benchmark, report):
    rows = benchmark.pedantic(run_window_ablation, rounds=1, iterations=1)
    report("ablation_window", render_ablations(rows))
    by_variant = {r.variant: r.value for r in rows}
    # Finding: on bursty dialogs (Evolution), gap-based sliding windows
    # chain whole page-apply bursts into one write group, costing some
    # accuracy relative to fixed buckets that split them — the trade the
    # paper's sliding semantics accepts to avoid splitting genuine
    # multi-key updates at arbitrary bucket boundaries.  Both variants
    # must stay usable.
    assert by_variant["sliding"] >= 0.5
    assert by_variant["buckets"] >= 0.5


def test_ablation_linkage(benchmark, report):
    rows = benchmark.pedantic(run_linkage_ablation, rounds=1, iterations=1)
    report("ablation_linkage", render_ablations(rows))
    by_variant = {r.variant: r.value for r in rows}
    # Complete linkage (the paper's choice) must not lose meaningfully to
    # single linkage, which chains unrelated groups through shared-burst
    # keys at thresholds below 2 (small per-cluster noise is tolerated —
    # on these traces the criteria land within a cluster or two of each
    # other).
    assert by_variant["complete"] >= by_variant["single"] - 0.05
    assert by_variant["complete"] >= 0.5


def test_ablation_sort_policy(benchmark, report):
    rows = benchmark.pedantic(run_sort_ablation, rounds=1, iterations=1)
    report("ablation_sort", render_ablations(rows))
    by_variant = {r.variant: r.value for r in rows}
    # The paper's mod-count sort prioritises rarely-modified clusters;
    # it must not lose to taking the clustering output order as-is.
    assert by_variant["modcount"] <= by_variant["none"] * 1.2


def test_ablation_timestamp_quantisation(benchmark, report):
    rows = benchmark.pedantic(run_quantisation_ablation, rounds=1, iterations=1)
    report("ablation_quantisation", render_ablations(rows))
    by_variant = {r.variant: r.value for r in rows}
    # At window 0, the 1-second quantiser accidentally groups multi-key
    # updates that exact timestamps keep apart (Fig. 3a's artifact).
    assert by_variant["1-second"] >= by_variant["exact"]

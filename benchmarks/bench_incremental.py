"""Incremental vs batch re-clustering on a generated multi-machine trace.

The scenario is the paper's deployment reality: clustering runs
continuously while loggers keep appending.  We merge several machines'
generated traces into one ~10k-event stream, consume 99% of it through an
:class:`IncrementalPipeline`, then measure how long it takes to fold in the
final 1% versus re-running the batch pipeline over the whole store.

Run as a script for CI/quick use::

    python benchmarks/bench_incremental.py --quick --out benchmarks/out/BENCH_incremental.json

or through the benchmark harness (``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.incremental import IncrementalPipeline
from repro.core.pipeline import cluster_settings
from repro.ttkv.store import TTKV
from repro.workload.machines import MachineProfile, PLATFORM_LINUX
from repro.workload.tracegen import generate_trace

#: Fraction of the stream appended after the pipeline is warm.
TAIL_FRACTION = 0.01

#: Base trace-generation seed (machine ``i`` uses ``SEED_BASE + i``);
#: recorded in the JSON so the CI regression gate only ever compares runs
#: over the identical trace.
SEED_BASE = 1000


def _machine_profile(index: int, days: int) -> MachineProfile:
    apps = ("Chrome Browser", "GNOME Edit", "Acrobat Reader")
    return MachineProfile(
        name=f"bench-m{index}",
        platform=PLATFORM_LINUX,
        days=days,
        apps=(apps[index % len(apps)],),
        sessions_per_day=3,
        actions_per_session=8,
        pref_edits_per_day=2.0,
        noise_keys=60,
        noise_writes_per_day=250,
        reads_per_day=0,
        seed=SEED_BASE + index,
    )


def build_multi_machine_events(machines: int, days: int) -> list[tuple]:
    """One merged, time-sorted modification stream across ``machines``."""
    merged: list[tuple] = []
    for index in range(machines):
        trace = generate_trace(_machine_profile(index, days))
        prefix = f"machine{index}/"
        merged.extend(
            (timestamp, prefix + key, value)
            for timestamp, key, value in trace.ttkv.write_events()
        )
    merged.sort(key=lambda event: event[0])
    return merged


def _key_sets(cluster_set) -> list[tuple[str, ...]]:
    return [tuple(cluster.sorted_keys()) for cluster in cluster_set]


def run_benchmark(quick: bool = False, repeats: int = 3) -> dict:
    """Time incremental catch-up vs full batch recluster; return the record."""
    repeats = max(1, repeats)
    days = 4 if quick else 12
    events = build_multi_machine_events(machines=3, days=days)
    split = len(events) - max(1, int(len(events) * TAIL_FRACTION))
    base, tail = events[:split], events[split:]

    full_store = TTKV()
    full_store.record_events(events)

    batch_seconds = min(
        _timed(lambda: cluster_settings(full_store))[0] for _ in range(repeats)
    )
    batch_clusters = cluster_settings(full_store)

    incremental_seconds = []
    incremental_clusters = None
    for _ in range(repeats):
        live = TTKV()
        live.record_events(base)
        pipeline = IncrementalPipeline(live)
        pipeline.update()  # warm: consume the 99% prefix
        live.record_events(tail)
        seconds, incremental_clusters = _timed(pipeline.update)
        incremental_seconds.append(seconds)
    incremental_best = min(incremental_seconds)

    matches = _key_sets(incremental_clusters) == _key_sets(batch_clusters)
    record = {
        "events": len(events),
        "tail_events": len(tail),
        "machines": 3,
        "days": days,
        "seeds": [SEED_BASE + index for index in range(3)],
        "quick": quick,
        "batch_seconds": batch_seconds,
        "incremental_seconds": incremental_best,
        "speedup": batch_seconds / incremental_best if incremental_best else float("inf"),
        "clusters": len(batch_clusters),
        "multi_key_clusters": len(batch_clusters.multi_clusters()),
        "incremental_equals_batch": matches,
    }
    return record


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def render(record: dict) -> str:
    return (
        "incremental vs batch re-clustering "
        f"({record['events']} events, {record['machines']} machines, "
        f"{record['tail_events']} appended):\n"
        f"  batch full recluster : {record['batch_seconds'] * 1000:8.2f} ms\n"
        f"  incremental catch-up : {record['incremental_seconds'] * 1000:8.2f} ms\n"
        f"  speedup              : {record['speedup']:8.1f}x\n"
        f"  clusters             : {record['clusters']} "
        f"({record['multi_key_clusters']} multi-key); "
        f"equal to batch: {record['incremental_equals_batch']}"
    )


def test_incremental_speedup(benchmark, report):
    record = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    report("bench_incremental", render(record))
    (Path(__file__).parent / "out" / "BENCH_incremental.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    assert record["incremental_equals_batch"]
    assert record["events"] >= 10_000
    assert record["speedup"] >= 5.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small trace, no speedup gate")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path, default=None, help="write the JSON record here")
    args = parser.parse_args(argv)
    record = run_benchmark(quick=args.quick, repeats=args.repeats)
    print(render(record))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    if not record["incremental_equals_batch"]:
        print("ERROR: incremental clusters diverged from batch", file=sys.stderr)
        return 1
    if not args.quick and record["speedup"] < 5.0:
        print("ERROR: speedup below the 5x acceptance floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Adversarial scenario fleets: every committed hostile regime, gated.

Each committed ``scenarios/*.yaml`` regime — flash-crowd rollout,
registry-scale churn storm, clock-skew + duplicate/late-event flood,
heterogeneous skewed population — is built from its pinned seed and
driven end to end through :func:`repro.scenarios.runner.run_fleet_scenario`
(join/leave schedule, backpressure and all).  Quick mode shrinks the
committed scenarios through the config system's own environment-override
layer (``REPRO__POPULATION__0__MACHINES=…``) rather than forking the
YAML, so the benchmark exercises exactly the three-layer loading path CI
validates.

Per regime the record carries:

- ``<regime>_equal_to_batch`` — the fleet model after the full hostile
  drive equals the independent
  :func:`~repro.fleet.merge.concatenated_batch_clusters` reference over
  the machines still attached (the ``fleet_equals_batch`` guarantee,
  extended to hostile inputs); checked *outside* the timed region;
- drive wall time, event and cluster counts.

The headline ``merge_speedup`` is a within-run ratio: the incremental
drive total versus the naive recompute-the-batch-every-round cost model
(one measured from-scratch reference recompute × the rounds driven), so
it transfers across machines of different speeds.  The clock-skew
scenario additionally replays one machine through the single-pipeline
stream runner and records its exact ``reorders_absorbed``/``rebuilds``
counters — seeded, hence deterministic — with an invariant that the
flood actually exercised the reorder machinery.

Run as a script for CI/quick use::

    python benchmarks/bench_adversarial.py --quick --out benchmarks/out/BENCH_adversarial.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fleet import concatenated_batch_clusters
from repro.scenarios.build import build_scenario
from repro.scenarios.config import load_scenario
from repro.scenarios.runner import run_fleet_scenario, run_stream_scenario
from repro.ttkv.store import TTKV

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "scenarios"

#: The committed regime catalog, in report order.
SCENARIOS = ("flash_crowd", "churn_storm", "clock_skew", "heterogeneous")

#: Quick-mode shrink, expressed as the config system's own env-override
#: layer (list indices address population groups positionally).
QUICK_ENV: dict[str, dict[str, str]] = {
    "flash_crowd": {
        "REPRO__POPULATION__0__MACHINES": "3",
        "REPRO__POPULATION__1__MACHINES": "1",
        "REPRO__POPULATION__2__MACHINES": "1",
    },
    "churn_storm": {
        "REPRO__POPULATION__0__MACHINES": "2",
        "REPRO__REGIME__KEYS": "2000",
        "REPRO__REGIME__WRITES_PER_MACHINE": "400",
    },
    "clock_skew": {
        "REPRO__POPULATION__0__MACHINES": "3",
        "REPRO__POPULATION__0__DAYS": "1",
    },
    "heterogeneous": {
        "REPRO__POPULATION__0__MACHINES": "1",
        "REPRO__POPULATION__1__MACHINES": "1",
        "REPRO__POPULATION__2__MACHINES": "1",
    },
}


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _key_sets(cluster_set) -> list[tuple[str, ...]]:
    return sorted(tuple(cluster.sorted_keys()) for cluster in cluster_set)


def _reference(built, machines_final):
    """The from-scratch concatenated-batch model over the live machines."""
    machine_events, machine_prefixes = {}, {}
    for machine in built.machines:
        if machine.machine_id not in machines_final:
            continue
        store = TTKV()
        store.record_events(machine.delivery)
        machine_events[machine.machine_id] = store.write_events()
        machine_prefixes[machine.machine_id] = machine.shard_prefixes
    pipeline = built.config.pipeline
    return sorted(
        tuple(sorted(keys))
        for keys in concatenated_batch_clusters(
            machine_events,
            machine_prefixes,
            window=pipeline.window,
            correlation_threshold=pipeline.correlation_threshold,
            linkage=pipeline.linkage,
        )
    )


def run_benchmark(quick: bool = False) -> dict:
    record: dict = {"quick": quick, "regimes": {}}
    seeds = []
    total_events = total_machines = 0
    naive_total = fleet_total = 0.0
    for name in SCENARIOS:
        env = QUICK_ENV[name] if quick else {}
        config = load_scenario(SCENARIO_DIR / f"{name}.yaml", env=env)
        seeds.append(config.seed)
        built = build_scenario(config)

        # the gate recomputes the batch reference; keep it out of the
        # timed drive so fleet_seconds measures the incremental path only
        fleet_seconds, result = _timed(
            lambda b=built: run_fleet_scenario(b, check_equality=False)
        )
        # median of three from-scratch recomputes: the single-shot times
        # are small enough for scheduler noise to move the headline ratio
        samples = sorted(
            (
                _timed(
                    lambda b=built, r=result: _reference(b, r.machines_final)
                )
                for _ in range(3)
            ),
            key=lambda sample: sample[0],
        )
        batch_seconds, reference = samples[1]
        equal = _key_sets(result.clusters) == reference
        rounds = len(result.rounds)
        naive_seconds = batch_seconds * rounds

        regime = {
            "machines": config.total_machines,
            "machines_final": len(result.machines_final),
            "events": built.total_events,
            "rounds": rounds,
            "clusters": len(result.clusters),
            "fleet_seconds": fleet_seconds,
            "naive_seconds": naive_seconds,
            "equal_to_batch": equal,
        }
        if name == "clock_skew":
            stream = run_stream_scenario(built, chunk_events=25)
            regime["reorders_absorbed"] = stream.reorders_absorbed
            regime["rebuilds"] = stream.rebuilds
            duplicates = sum(
                machine.notes.get("duplicates", 0)
                for machine in built.machines
            )
            regime["duplicates"] = duplicates
            record["clock_skew_flood_exercised"] = bool(
                duplicates > 0
                and (stream.reorders_absorbed > 0 or stream.rebuilds > 0)
            )
        record["regimes"][name] = regime
        record[f"{name}_equal_to_batch"] = equal
        total_events += built.total_events
        total_machines += config.total_machines
        naive_total += naive_seconds
        fleet_total += fleet_seconds

    record.update(
        seeds=seeds,
        events=total_events,
        machines=total_machines,
        fleet_seconds=fleet_total,
        naive_seconds=naive_total,
        merge_speedup=(
            naive_total / fleet_total if fleet_total else float("inf")
        ),
        events_per_second=(
            total_events / fleet_total if fleet_total else float("inf")
        ),
    )
    return record


def render(record: dict) -> str:
    lines = [
        "adversarial scenario fleets "
        f"({record['machines']} machines, {record['events']} events, "
        f"{'quick' if record['quick'] else 'full'} mode):"
    ]
    for name, regime in record["regimes"].items():
        extra = ""
        if name == "clock_skew":
            extra = (
                f"; {regime['duplicates']} dups, "
                f"{regime['reorders_absorbed']} absorbed / "
                f"{regime['rebuilds']} rebuilds"
            )
        lines.append(
            f"  {name:<14}: {regime['events']:6d} events, "
            f"{regime['machines']:2d} machines, {regime['rounds']:2d} rounds "
            f"-> {regime['clusters']:4d} clusters in "
            f"{regime['fleet_seconds'] * 1000:8.1f} ms; "
            f"equal to batch: {regime['equal_to_batch']}{extra}"
        )
    lines.append(
        f"  merge speedup  : {record['merge_speedup']:8.1f}x vs "
        "recompute-every-round "
        f"({record['events_per_second']:.0f} events/s incremental)"
    )
    return "\n".join(lines)


def test_adversarial_scenarios(benchmark, report):
    record = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    report("bench_adversarial", render(record))
    (Path(__file__).parent / "out" / "BENCH_adversarial.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    for name in SCENARIOS:
        assert record[f"{name}_equal_to_batch"]
    assert record["clock_skew_flood_exercised"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="shrink the committed scenarios via env overrides",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the JSON record here"
    )
    args = parser.parse_args(argv)
    record = run_benchmark(quick=args.quick)
    print(render(record))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    status = 0
    for name in SCENARIOS:
        if not record[f"{name}_equal_to_batch"]:
            print(
                f"ERROR: {name} fleet model diverged from the "
                "concatenated-batch reference",
                file=sys.stderr,
            )
            status = 1
    if not record["clock_skew_flood_exercised"]:
        print(
            "ERROR: the clock-skew flood never exercised the reorder "
            "machinery",
            file=sys.stderr,
        )
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())

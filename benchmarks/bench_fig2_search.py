"""Figure 2: DFS vs BFS trials as the error scenario varies."""

import statistics

from repro.experiments.fig2 import (
    render_fig2,
    run_fig2a,
    run_fig2b,
    run_fig2c,
)

INJECTION_DAYS = (2.0, 6.0, 10.0, 14.0)
SPURIOUS = (0, 1, 2)
BOUNDS = (10.0, 20.0, 40.0, 80.0)


def test_fig2a_trials_by_injection_age(benchmark, report):
    series = benchmark.pedantic(
        run_fig2a, kwargs={"injection_days": INJECTION_DAYS},
        rounds=1, iterations=1,
    )
    report(
        "fig2a",
        render_fig2(
            "injection days", INJECTION_DAYS, series,
            "Figure 2a: trials vs time of error (avg over 16 cases)",
        ),
    )
    # Both strategies degrade as the error moves into the past...
    for name in ("DFS", "BFS"):
        assert series[name][-1] >= series[name][0]
    # ...and DFS outperforms BFS overall, as in the paper.
    assert statistics.mean(series["DFS"]) <= statistics.mean(series["BFS"])


def test_fig2b_trials_by_spurious_writes(benchmark, report):
    series = benchmark.pedantic(
        run_fig2b, kwargs={"spurious_counts": SPURIOUS}, rounds=1, iterations=1
    )
    report(
        "fig2b",
        render_fig2(
            "spurious writes", SPURIOUS, series,
            "Figure 2b: trials vs spurious writes (avg over 16 cases)",
        ),
    )
    # BFS is highly sensitive to spurious writes (to reach a deeper
    # version it must retry every other cluster); DFS much less so.
    bfs_growth = series["BFS"][-1] - series["BFS"][0]
    dfs_growth = series["DFS"][-1] - series["DFS"][0]
    assert bfs_growth > 0
    assert bfs_growth > dfs_growth


def test_fig2c_trials_by_search_bound(benchmark, report):
    series = benchmark.pedantic(
        run_fig2c, kwargs={"bound_days": BOUNDS}, rounds=1, iterations=1
    )
    report(
        "fig2c",
        render_fig2(
            "time bound (days)", BOUNDS, series,
            "Figure 2c: trials vs search time bound (avg over 16 cases)",
        ),
    )
    # Trials grow roughly monotonically with the width of the search
    # window, for both strategies.
    for name in ("DFS", "BFS"):
        assert series[name][-1] > series[name][0]

"""Fault tolerance: supervised recovery cost and exactness under faults.

Two arms over the identical multi-machine traces and round slicing:

- **clean**: :class:`repro.fleet.FleetPipeline.drive` with no resilience
  bundle — the plain driver.
- **faulted**: the same drive under a seeded
  :class:`~repro.fleet.resilience.FaultInjector` (machine crashes,
  snapshot loss, torn and corrupt checkpoint writes) with supervised
  recovery and crash-safe generation checkpoints enabled.

The benchmark measures what recovery *costs* (``fault_overhead`` — the
faulted arm's wall-clock over the clean arm's) and how often it is
needed (``recovery_rounds`` — rounds in which at least one machine was
restarted; deterministic for a fixed seed).  Three invariants gate the
run: the faulted fleet's final model equals the independent
concatenated-batch reference (``faulted_equals_batch``), every faulted
round lands on the clean arm's per-round model
(``faulted_matches_clean_each_round``), and a second faulted drive with
the same seed reproduces the identical fault sequence byte-for-byte
(``deterministic_schedule``).

Run as a script for CI/quick use::

    python benchmarks/bench_faults.py --quick --out benchmarks/out/BENCH_faults.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fleet import FleetPipeline, concatenated_batch_clusters
from repro.fleet.resilience import (
    FaultInjector,
    FaultSpec,
    FleetResilience,
    ResilienceConfig,
)
from repro.ttkv.store import TTKV
from repro.workload.machines import MachineProfile, PLATFORM_LINUX
from repro.workload.tracegen import generate_trace

APPS = (
    "Chrome Browser",
    "GNOME Edit",
    "Eye of GNOME",
    "Acrobat Reader",
)

#: Trace-generation seed; recorded in the JSON so the CI regression gate
#: only ever compares runs over the identical traces.
SEED = 5077

#: Injector seed — the fault schedule is a pure function of this, so
#: ``recovery_rounds`` is exact, not statistical.
FAULT_SEED = 31337


def _profile(quick: bool, seed: int) -> MachineProfile:
    return MachineProfile(
        name="bench-faults",
        platform=PLATFORM_LINUX,
        days=1 if quick else 4,
        apps=APPS,
        sessions_per_day=5,
        actions_per_session=10,
        pref_edits_per_day=3.0,
        noise_keys=40 if quick else 100,
        noise_writes_per_day=150 if quick else 500,
        reads_per_day=0,
        seed=seed,
    )


def _key_sets(cluster_set) -> list[tuple[str, ...]]:
    return sorted(tuple(cluster.sorted_keys()) for cluster in cluster_set)


def _chunked(events, chunks):
    size = max(1, -(-len(events) // max(1, chunks)))
    return [events[start : start + size] for start in range(0, len(events), size)]


def _spec() -> FaultSpec:
    return FaultSpec(
        seed=FAULT_SEED,
        crash_rate=0.15,
        snapshot_loss_rate=0.08,
        torn_write_rate=0.12,
        corrupt_rate=0.08,
    )


def _drive(machine_events, machine_prefixes, chunks, resilience=None):
    """One full drive; returns (seconds, per-round models, rounds, fleet model)."""
    fleet = FleetPipeline()
    for machine_id in machine_events:
        fleet.add_machine(machine_id, TTKV(), machine_prefixes[machine_id])
    feeds = {
        machine_id: _chunked(events, chunks)
        for machine_id, events in machine_events.items()
    }
    models = []
    start = time.perf_counter()
    rounds = asyncio.run(
        fleet.drive(
            feeds,
            on_round=lambda r: models.append(_key_sets(r.clusters)),
            resilience=resilience,
        )
    )
    elapsed = time.perf_counter() - start
    final = _key_sets(fleet.clusters())
    fleet.close()
    return elapsed, models, rounds, final


def run_benchmark(quick: bool = False) -> dict:
    machines = 4 if quick else 6
    chunks = 6 if quick else 12

    machine_events: dict[str, list] = {}
    machine_prefixes: dict[str, tuple[str, ...]] = {}
    for index in range(machines):
        machine_id = f"m{index:03d}"
        trace = generate_trace(_profile(quick, SEED + index))
        machine_events[machine_id] = trace.ttkv.write_events()
        machine_prefixes[machine_id] = tuple(
            trace.apps[name].key_prefix for name in APPS
        )
    total_events = sum(len(events) for events in machine_events.values())

    clean_seconds, clean_models, _, _ = _drive(
        machine_events, machine_prefixes, chunks
    )

    def resilience_bundle(state_dir):
        # backoff at zero: the overhead metric measures recovery *work*
        # (restarts, checkpoint verification), not injected sleeps
        return FleetResilience(
            injector=FaultInjector(_spec()),
            config=ResilienceConfig(
                failure_threshold=2, backoff_base=0.0, backoff_max=0.0
            ),
            state_dir=state_dir,
        )

    with tempfile.TemporaryDirectory(prefix="bench-faults-") as state:
        resilience = resilience_bundle(Path(state) / "a")
        faulted_seconds, faulted_models, rounds, final = _drive(
            machine_events, machine_prefixes, chunks, resilience=resilience
        )
        replay = resilience_bundle(Path(state) / "b")
        _drive(machine_events, machine_prefixes, chunks, resilience=replay)

    reference = sorted(
        tuple(sorted(keys))
        for keys in concatenated_batch_clusters(machine_events, machine_prefixes)
    )

    record = {
        "events": total_events,
        "machines": machines,
        "rounds": len(rounds),
        "seed": SEED,
        "fault_seed": FAULT_SEED,
        "quick": quick,
        "clean_seconds": clean_seconds,
        "faulted_seconds": faulted_seconds,
        "fault_overhead": (
            faulted_seconds / clean_seconds if clean_seconds else float("inf")
        ),
        "faults_injected": resilience.injector.faults_fired,
        "machines_restarted": sum(r.machines_restarted for r in rounds),
        "recovery_rounds": sum(
            1 for r in rounds if r.machines_restarted > 0
        ),
        "faulted_equals_batch": final == reference,
        "faulted_matches_clean_each_round": faulted_models == clean_models,
        "deterministic_schedule": (
            resilience.injector.signature() == replay.injector.signature()
        ),
    }
    return record


def render(record: dict) -> str:
    return (
        "supervised recovery under seeded fault injection "
        f"({record['machines']} machines, {record['events']} events, "
        f"{record['rounds']} rounds):\n"
        f"  clean drive          : {record['clean_seconds'] * 1000:8.2f} ms\n"
        f"  faulted drive        : {record['faulted_seconds'] * 1000:8.2f} ms "
        f"({record['fault_overhead']:.2f}x)\n"
        f"  faults injected      : {record['faults_injected']} "
        f"({record['machines_restarted']} restarts over "
        f"{record['recovery_rounds']} recovery rounds)\n"
        f"  faulted equals batch : {record['faulted_equals_batch']}; "
        f"per-round equals clean: {record['faulted_matches_clean_each_round']}; "
        f"schedule deterministic: {record['deterministic_schedule']}"
    )


def test_fault_recovery(benchmark, report):
    record = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    report("bench_faults", render(record))
    (Path(__file__).parent / "out" / "BENCH_faults.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    assert record["faulted_equals_batch"]
    assert record["faulted_matches_clean_each_round"]
    assert record["deterministic_schedule"]
    assert record["faults_injected"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small traces, fewer rounds"
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the JSON record here"
    )
    args = parser.parse_args(argv)
    record = run_benchmark(quick=args.quick)
    print(render(record))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    for invariant in (
        "faulted_equals_batch",
        "faulted_matches_clean_each_round",
        "deterministic_schedule",
    ):
        if not record[invariant]:
            print(f"ERROR: invariant {invariant} is false", file=sys.stderr)
            return 1
    if record["faults_injected"] == 0:
        print("ERROR: the fault schedule never fired", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

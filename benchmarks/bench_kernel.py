"""Numpy HAC kernel vs pure-Python agglomeration on large components.

The kernel (:mod:`repro.core.hac_kernel`) exists for exactly one reason:
the pure-Python heap agglomeration is the hot path of every large-
component repair, and it both scales super-quadratically in practice
(dict-backed Lance–Williams updates, O(n²) heap churn) and holds the GIL
throughout.  This benchmark pins the first claim with numbers: seeded
random write-group traces are folded into one connected component of
200–1000 keys, and both kernels agglomerate it from singletons —
**merge-for-merge equality asserted on every timed run** — under
complete linkage (the paper's choice; single-linkage equality is
asserted as well on the smallest component).

The headline ``kernel_speedup`` is the Python/numpy latency ratio on the
largest component.  It is a within-run ratio, so the CI regression gate
(``benchmarks/check_regression.py``) compares it across machines without
wall-clock flakiness; full mode additionally enforces the ≥3x acceptance
floor at every measured size (the real ratio is an order of magnitude
above it — the floor only catches catastrophic regressions).

Run as a script for CI/quick use::

    python benchmarks/bench_kernel.py --quick --out benchmarks/out/BENCH_kernel.json

or through the benchmark harness (``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.clustering import agglomerate_component
from repro.core.correlation import CorrelationMatrix
from repro.core.hac_kernel import KERNEL_NUMPY, KERNEL_PYTHON, numpy_available

#: Trace-generation seed; recorded in the JSON so the CI regression gate
#: only ever compares runs over the identical trace.
SEED = 20260729

#: Component sizes measured per mode (keys in the single hot component).
QUICK_SIZES = (200,)
FULL_SIZES = (200, 500, 1000)

#: Timed repetitions per kernel per size (the best is recorded).
REPEATS = 3

#: Acceptance floor for the full-mode per-size speedup gate.
SPEEDUP_FLOOR = 3.0


def _component_matrix(keys: int, rng: random.Random) -> CorrelationMatrix:
    """One dense-ish connected component of ``keys`` keys.

    Write groups sample random subsets of the key space, the shape a busy
    application's correlated settings produce: every key co-occurs with
    many others at varied strengths, so the distance structure is dense
    and tie-poor — the regime where agglomeration cost dominates.
    """
    names = [f"app/k{i:04d}" for i in range(keys)]
    matrix = CorrelationMatrix()
    width = max(3, keys // 13)
    for gid in range(keys * 2):
        matrix.observe_group(gid, rng.sample(names, rng.randint(2, width)))
    components = matrix.connected_components()
    assert len(components) == 1, "trace failed to form a single component"
    return matrix


def _time_kernel(matrix: CorrelationMatrix, kernel: str) -> tuple[float, list]:
    component = set(matrix.keys)
    best = float("inf")
    merges = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = agglomerate_component(matrix, component, "complete", kernel=kernel)
        best = min(best, time.perf_counter() - start)
        if merges is not None and result != merges:
            raise AssertionError("kernel produced unstable merges across runs")
        merges = result
    return best, merges


def run_benchmark(quick: bool = False) -> dict:
    if not numpy_available():
        raise RuntimeError("bench_kernel needs numpy (pip install numpy)")
    rng = random.Random(SEED)
    sizes = QUICK_SIZES if quick else FULL_SIZES
    components = []
    agree = True
    for keys in sizes:
        matrix = _component_matrix(keys, rng)
        python_seconds, python_merges = _time_kernel(matrix, KERNEL_PYTHON)
        numpy_seconds, numpy_merges = _time_kernel(matrix, KERNEL_NUMPY)
        if python_merges != numpy_merges:
            agree = False
        if keys == sizes[0]:
            # single-linkage equality ride-along on the smallest component
            single_py = agglomerate_component(
                matrix, set(matrix.keys), "single", kernel=KERNEL_PYTHON
            )
            single_np = agglomerate_component(
                matrix, set(matrix.keys), "single", kernel=KERNEL_NUMPY
            )
            if single_py != single_np:
                agree = False
        components.append(
            {
                "keys": keys,
                "merges": len(python_merges),
                "python_seconds": python_seconds,
                "numpy_seconds": numpy_seconds,
                "speedup": (
                    python_seconds / numpy_seconds
                    if numpy_seconds
                    else float("inf")
                ),
            }
        )
    return {
        "seed": SEED,
        "quick": quick,
        "sizes": list(sizes),
        "components": components,
        "kernel_speedup": components[-1]["speedup"],
        "kernels_agree": agree,
    }


def render(record: dict) -> str:
    lines = [
        "numpy HAC kernel vs pure-Python agglomeration "
        f"(complete linkage, {len(record['components'])} component size(s)):"
    ]
    for entry in record["components"]:
        lines.append(
            f"  {entry['keys']:5d} keys ({entry['merges']} merges): "
            f"python {entry['python_seconds'] * 1000:9.2f} ms, "
            f"numpy {entry['numpy_seconds'] * 1000:8.2f} ms "
            f"({entry['speedup']:6.1f}x)"
        )
    lines.append(
        f"  merge-for-merge equality  : {record['kernels_agree']}"
    )
    return "\n".join(lines)


def _gate(record: dict, quick: bool) -> list[str]:
    """Human-readable failures; empty when the record passes its gates."""
    failures = []
    if not record["kernels_agree"]:
        failures.append("numpy kernel diverged from the pure-Python merges")
    if quick:
        return failures
    for entry in record["components"]:
        if entry["speedup"] < SPEEDUP_FLOOR:
            failures.append(
                f"{entry['keys']}-key component speedup "
                f"{entry['speedup']:.2f}x below the {SPEEDUP_FLOOR}x floor"
            )
    if max(entry["keys"] for entry in record["components"]) < 1000:
        failures.append("full mode must measure a 1000-key component")
    return failures


def test_kernel_speedup(benchmark, report):
    record = benchmark.pedantic(
        lambda: run_benchmark(quick=True), rounds=1, iterations=1
    )
    report("bench_kernel", render(record))
    (Path(__file__).parent / "out" / "BENCH_kernel.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    assert record["kernels_agree"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smallest component only; skip the speedup floor",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the JSON record here"
    )
    args = parser.parse_args(argv)
    record = run_benchmark(quick=args.quick)
    print(render(record))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    failures = _gate(record, quick=args.quick)
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Columnar journal backbone: batch ingest, mmap resume, slice payloads.

PR 7 re-platformed the event journal on columnar numpy segments and gave
the correlation matrix a vectorised closed-group ingest
(:meth:`~repro.core.correlation.CorrelationMatrix.observe_groups_batch`).
This benchmark pins the three claims that motivated it, on one seeded
dense co-written trace:

1. ``ingest_speedup`` — folding closed write groups into the matrix in
   vectorised batches (bincount key occurrences, unique-coded pairs)
   versus the per-event streaming loop (one ``update_groups`` + compact
   per group, the pre-batch engine's cadence).  Full mode enforces the
   ≥5x acceptance floor.
2. ``resume_speedup`` — re-opening a persisted journal via
   :func:`~repro.ttkv.columnar.load_columnar` (mmap + cursor seek)
   versus decoding a JSON event log and replaying it into a list
   journal.  Full mode enforces the ≥10x acceptance floor.
3. ``slice_bytes`` — the interned columnar hand-off payload for a
   worker-bound journal slice, versus the same slice as per-event JSON
   dicts; the gate fails if the batch payload stops being smaller.

**Correctness is asserted inside every timed run**: the batch-ingested
matrix must equal the loop-ingested one, the resumed journal must equal
the original, the decoded slice payload must equal the plain slice, and a
columnar-backend pipeline must produce the list backend's exact clusters
at several stream prefixes (``columnar_equals_list``).

Run as a script for CI/quick use::

    python benchmarks/bench_ingest.py --quick --out benchmarks/out/BENCH_ingest.json

or through the benchmark harness (``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.correlation import CorrelationMatrix
from repro.core.pipeline import cluster_settings
from repro.core.sharded import ShardedPipeline
from repro.ttkv.columnar import (
    ColumnarJournal,
    columnar_available,
    load_columnar,
    save_columnar,
)
from repro.ttkv.journal import (
    EventJournal,
    decode_event_batch,
    encode_event,
    encode_event_batch,
)
from repro.ttkv.store import DELETED, TTKV

#: Trace-generation seed; recorded in the JSON so the CI regression gate
#: only ever compares runs over the identical trace.
SEED = 20260807

#: Closed write groups ingested into the matrix (quick / full).
QUICK_GROUPS = 4096
FULL_GROUPS = 12_000

#: Journal events persisted and resumed (quick / full).
QUICK_EVENTS = 20_000
FULL_EVENTS = 120_000

#: Groups folded per batch on the vectorised path (the engine batches one
#: update's closed groups; a chunked stream closes whole chunks' worth —
#: hundreds to thousands — per update).
BATCH = 2048

#: Timed repetitions (the best is recorded).
REPEATS = 5

#: Full-mode acceptance floors.
INGEST_FLOOR = 5.0
RESUME_FLOOR = 10.0


def _write_groups(count: int, rng: random.Random) -> list[frozenset[str]]:
    """Dense co-written groups over a fixed key population.

    A machine's settings do not multiply as the trace grows — a longer
    trace re-observes the *same* keys (that repetition is the entire
    premise of the clustering), so the key space stays fixed while the
    group count scales with the mode.
    """
    names = [f"app/k{i:04d}" for i in range(120)]
    return [
        frozenset(rng.sample(names, rng.randint(3, 9))) for _ in range(count)
    ]


def _events(count: int, rng: random.Random) -> list[tuple]:
    """A journal-shaped modification stream (monotonic per key)."""
    keys = [f"app/k{i:03d}" for i in range(80)]
    out = []
    t = 0.0
    for i in range(count):
        t += rng.choice([0.0, 0.25, 0.25, 1.5])
        value = rng.choice([0, 1, "on", "off", None, DELETED])
        out.append((t, rng.choice(keys), value))
    return out


def _best(fn) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _matrix_fingerprint(matrix: CorrelationMatrix) -> tuple:
    return (
        dict(matrix._base_counts),
        dict(matrix._base_common),
        matrix._compacted_count,
        sorted(map(sorted, matrix.connected_components())),
    )


def _time_ingest(groups: list[frozenset[str]]) -> dict:
    def per_event():
        matrix = CorrelationMatrix()
        for index, members in enumerate(groups):
            matrix.update_groups(added=[(index, members)])
            matrix.compact(index + 1)
        return matrix

    def batched():
        matrix = CorrelationMatrix()
        for start in range(0, len(groups), BATCH):
            batch = groups[start:start + BATCH]
            matrix.observe_groups_batch(start, batch)
            matrix.compact(start + len(batch))
        return matrix

    loop_seconds, loop_matrix = _best(per_event)
    batch_seconds, batch_matrix = _best(batched)
    if _matrix_fingerprint(loop_matrix) != _matrix_fingerprint(batch_matrix):
        raise AssertionError("batch ingest diverged from the per-event loop")
    return {
        "groups": len(groups),
        "per_event_seconds": loop_seconds,
        "batch_seconds": batch_seconds,
        "ingest_speedup": (
            loop_seconds / batch_seconds if batch_seconds else float("inf")
        ),
        "ingest_throughput": (
            len(groups) / batch_seconds if batch_seconds else float("inf")
        ),
    }


def _time_resume(events: list[tuple], workdir: Path) -> dict:
    journal = ColumnarJournal()
    for event in events:
        journal.append_event(event)
    columnar_path = str(workdir / "journal.npy")
    save_columnar(journal, columnar_path)
    json_path = workdir / "journal.json"
    json_path.write_text(
        json.dumps([encode_event(e) for e in journal.events()]),
        encoding="utf-8",
    )

    def resume_json():
        replayed = EventJournal()
        from repro.ttkv.journal import decode_event

        for record in json.loads(json_path.read_text(encoding="utf-8")):
            replayed.append_event(decode_event(record))
        return replayed

    def resume_mmap():
        resumed = load_columnar(columnar_path, mmap=True)
        # the consumer's first action after resume: seek its cursor
        resumed.events_from(len(resumed) - 1)
        return resumed

    json_seconds, json_journal = _best(resume_json)
    mmap_seconds, mmap_journal = _best(resume_mmap)
    if mmap_journal.events() != json_journal.events():
        raise AssertionError("mmap resume diverged from the JSON replay")
    return {
        "events": len(events),
        "json_decode_seconds": json_seconds,
        "mmap_seconds": mmap_seconds,
        "resume_speedup": (
            json_seconds / mmap_seconds if mmap_seconds else float("inf")
        ),
        "journal_bytes": Path(columnar_path).stat().st_size,
        "json_bytes": json_path.stat().st_size,
    }


def _slice_payloads(events: list[tuple]) -> dict:
    journal = ColumnarJournal()
    for event in events:
        journal.append_event(event)
    view = journal.events_from(len(events) // 2)
    batch_payload = encode_event_batch(view)
    per_event_payload = [encode_event(e) for e in view]
    if decode_event_batch(batch_payload) != view.materialize():
        raise AssertionError("batch slice payload did not round-trip")
    batch_bytes = len(json.dumps(batch_payload).encode("utf-8"))
    dict_bytes = len(json.dumps(per_event_payload).encode("utf-8"))
    return {
        "slice_events": len(view),
        "slice_bytes": batch_bytes,
        "per_event_slice_bytes": dict_bytes,
        "slice_shrink": dict_bytes / batch_bytes if batch_bytes else 0.0,
    }


def _pipelines_agree(events: list[tuple], prefixes: int, rng) -> bool:
    """Columnar and list pipelines must agree at several stream prefixes."""
    stores = {b: TTKV(journal_backend=b) for b in ("list", "columnar")}
    pipelines = {
        b: ShardedPipeline(stores[b], shard_prefixes=(), journal_backend=b)
        for b in stores
    }
    cuts = sorted(rng.sample(range(1, len(events) + 1), prefixes - 1))
    cuts.append(len(events))
    consumed = 0
    try:
        for cut in cuts:
            chunk = events[consumed:cut]
            consumed = cut
            shapes = {}
            for backend, store in stores.items():
                store.record_events(chunk)
                shapes[backend] = [
                    tuple(c.sorted_keys()) for c in pipelines[backend].update()
                ]
            batch = [
                tuple(c.sorted_keys())
                for c in cluster_settings(stores["list"])
            ]
            if shapes["columnar"] != shapes["list"] or shapes["list"] != batch:
                return False
    finally:
        for pipeline in pipelines.values():
            pipeline.close()
    return True


def run_benchmark(quick: bool = False) -> dict:
    if not columnar_available():
        raise RuntimeError("bench_ingest needs numpy (pip install numpy)")
    rng = random.Random(SEED)
    groups = _write_groups(QUICK_GROUPS if quick else FULL_GROUPS, rng)
    events = _events(QUICK_EVENTS if quick else FULL_EVENTS, rng)
    record: dict = {"seed": SEED, "quick": quick}
    record.update(_time_ingest(groups))
    with tempfile.TemporaryDirectory(prefix="bench_ingest_") as workdir:
        record.update(_time_resume(events, Path(workdir)))
    record.update(_slice_payloads(events))
    record["columnar_equals_list"] = _pipelines_agree(
        events[: 3000 if quick else 8000], prefixes=5, rng=rng
    )
    return record


def render(record: dict) -> str:
    return "\n".join(
        [
            "columnar journal backbone (batch ingest / mmap resume / slices):",
            f"  matrix ingest, {record['groups']} closed groups : "
            f"per-event {record['per_event_seconds'] * 1000:8.1f} ms, "
            f"batched {record['batch_seconds'] * 1000:7.1f} ms "
            f"({record['ingest_speedup']:5.1f}x, "
            f"{record['ingest_throughput']:,.0f} groups/s)",
            f"  journal resume, {record['events']} events   : "
            f"json replay {record['json_decode_seconds'] * 1000:8.1f} ms, "
            f"mmap {record['mmap_seconds'] * 1000:7.1f} ms "
            f"({record['resume_speedup']:5.1f}x)",
            f"  worker slice, {record['slice_events']} events    : "
            f"batch payload {record['slice_bytes']:,} B vs per-event dicts "
            f"{record['per_event_slice_bytes']:,} B "
            f"({record['slice_shrink']:.1f}x smaller)",
            f"  columnar ≡ list ≡ batch   : {record['columnar_equals_list']}",
        ]
    )


def _gate(record: dict, quick: bool) -> list[str]:
    """Human-readable failures; empty when the record passes its gates."""
    failures = []
    if not record["columnar_equals_list"]:
        failures.append("columnar pipeline diverged from the list backend")
    if record["slice_bytes"] >= record["per_event_slice_bytes"]:
        failures.append("batch slice payload is no smaller than event dicts")
    if quick:
        return failures
    if record["ingest_speedup"] < INGEST_FLOOR:
        failures.append(
            f"batch ingest speedup {record['ingest_speedup']:.2f}x below "
            f"the {INGEST_FLOOR}x floor"
        )
    if record["resume_speedup"] < RESUME_FLOOR:
        failures.append(
            f"mmap resume speedup {record['resume_speedup']:.2f}x below "
            f"the {RESUME_FLOOR}x floor"
        )
    return failures


def test_ingest_speedup(benchmark, report):
    record = benchmark.pedantic(
        lambda: run_benchmark(quick=True), rounds=1, iterations=1
    )
    report("bench_ingest", render(record))
    (Path(__file__).parent / "out" / "BENCH_ingest.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    assert record["columnar_equals_list"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller trace; skip the speedup floors",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the JSON record here"
    )
    args = parser.parse_args(argv)
    record = run_benchmark(quick=args.quick)
    print(render(record))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    failures = _gate(record, quick=args.quick)
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 3: sensitivity of average cluster size to window and threshold."""

from repro.experiments.fig3 import (
    render_fig3,
    run_fig3a,
    run_fig3b,
)


def test_fig3a_window_size(benchmark, report):
    windows, sizes = benchmark.pedantic(run_fig3a, rounds=1, iterations=1)
    report(
        "fig3a",
        render_fig3("window (s)", windows, sizes, "Figure 3a: avg cluster size vs window"),
    )
    by_window = dict(zip(windows, sizes))
    # The paper's cliff: window=0 (identical quantised timestamps only)
    # collapses multi-key updates that straddle a second boundary.
    assert by_window[0.0] < by_window[1.0]
    # Away from the cliff the curve is comparatively flat: from 1 s to
    # 600 s the average stays within a modest band (paper: ~3.5-4.5).
    plateau = [s for w, s in by_window.items() if w >= 1.0]
    assert max(plateau) <= 2.0 * min(plateau)
    assert 2.0 <= by_window[1.0] <= 6.0


def test_fig3b_threshold(benchmark, report):
    thresholds, sizes = benchmark.pedantic(run_fig3b, rounds=1, iterations=1)
    report(
        "fig3b",
        render_fig3(
            "corr threshold", thresholds, sizes,
            "Figure 3b: avg cluster size vs clustering threshold",
        ),
    )
    by_threshold = dict(zip(thresholds, sizes))
    # Lower thresholds can only merge more: size non-increasing in the
    # threshold, and overall the curve is flat-ish (paper: ~25% swing).
    assert by_threshold[0.5] >= by_threshold[2.0]
    assert max(sizes) <= 2.5 * min(sizes)

"""Serial vs thread vs process shard execution on a multi-app trace.

The scenario extends ``bench_sharded.py``'s busy five-application machine:
clustering runs continuously while every application keeps writing, so
each ``update()`` has several dirty shards — exactly the shape the
pluggable execution layer (:mod:`repro.core.executors`) targets.  All
three strategies consume the same generated trace (seeded, recorded in
the output JSON): warm a :class:`ShardedPipeline` on 90% of the stream,
then append the interleaved tail in slices, timing every ``update()``.

Two different numbers fall out, and they answer different questions:

- ``thread_speedup`` / ``process_speedup`` — wall-clock ratio against the
  serial executor.  On a stock (GIL) CPython build this profile's
  clustering hot path is pure Python (its components sit below the
  kernel-dispatch threshold), so the thread executor cannot beat serial
  on wall clock no matter how many cores exist — a shard update shorter
  than the interpreter's ~5 ms switch interval runs start-to-finish
  inside one GIL slice, so thread-pool "concurrency" degenerates to
  serial execution plus dispatch overhead (expect ~0.8–1.0x here,
  honestly reported).  The process executor has true parallelism and,
  with worker-affinity engine caching, ships only the unread journal
  slice per steady-state update — but dispatch and pickling overhead
  still dominate when a shard update is sub-millisecond, as on this
  profile.  The benchmark records ``cpu_count`` (and the gates check
  the interpreter) so CI compares like with like.
- ``thread_parallel_speedup`` / ``process_parallel_speedup`` — the
  overlap factor from ``UpdateStats.parallel_speedup``: total per-shard
  busy seconds over the wall time of the shard pass.  Under the GIL this
  too sits near 1.0 for sub-slice tasks (threads cannot even *start*
  timing until they first hold the GIL); on a free-threaded build it
  approaches the worker count and the ≥2x gate below arms itself.

**The large-component profile** is the counterpoint, added with the
numpy HAC kernel (:mod:`repro.core.hac_kernel`): a few applications
whose settings form one dense several-hundred-key component each, so
per-shard update cost is dominated by agglomeration *inside the kernel*
— which releases the GIL.  There, thread-vs-serial becomes a real
wall-clock win on stock CPython with ≥2 cores (``large_thread_speedup``,
gated ≥1.5x in full mode on such hosts), the process executor's sticky
slice hand-off must at least break even against serial
(``large_process_speedup``, gated ≥1x in full mode on such hosts — this
is where process mode actually pays), and the same profile measures the
kernel-vs-Python ratio in live streaming context
(``large_kernel_speedup``, the quick-mode regression headline).  A
pure-Python reference run is timed alongside and all four cluster sets
must be identical.

**The deployment profile** measures state growth instead of speed: one
engine runs over several synthetic "weeks" of writes to a fixed key
population, checkpointing after each week.  With matrix compaction the
checkpoint is O(live keys), so its size plateaus once the key/pair
population saturates — ``checkpoint_bytes`` (the final week's size) is
the regression headline, and ``deployment_checkpoint_flat`` asserts the
plateau (last week within 5% of week two).

Correctness is asserted unconditionally: all strategies must produce
identical final cluster sets, equal to the batch ``cluster_settings``
reference per application prefix (catch-all included) on the multi-app
profile, and serial ≡ thread ≡ python-kernel on the large-component
profile.

Run as a script for CI/quick use::

    python benchmarks/bench_parallel.py --quick --out benchmarks/out/BENCH_parallel.json

or through the benchmark harness (``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.executors import (
    ProcessShardExecutor,
    SerialExecutor,
    ThreadShardExecutor,
)
from repro.core.hac_kernel import KERNEL_NUMPY, KERNEL_PYTHON
from repro.core.pipeline import cluster_settings
from repro.core.sharded import ShardedPipeline
from repro.ttkv.sharding import CATCH_ALL
from repro.ttkv.store import TTKV
from repro.workload.machines import MachineProfile, PLATFORM_LINUX
from repro.workload.tracegen import generate_trace

#: The applications sharing the benchmark machine (all Linux-flavoured).
APPS = (
    "Chrome Browser",
    "GNOME Edit",
    "Eye of GNOME",
    "Acrobat Reader",
    "Evolution Mail",
)

#: Trace-generation seed; recorded in the JSON so the CI regression gate
#: only ever compares runs over the identical trace.
SEED = 2024

#: Fraction of the stream appended (interleaved across all apps) after
#: the pipelines are warm.
TAIL_FRACTION = 0.10

#: How many update() calls the tail is spread over.
TAIL_SLICES = 20

#: Pool width for the thread/process strategies (unless --workers).
DEFAULT_WORKERS = 4

#: Large-component profile: applications and per-app component size.
LARGE_APPS = 3
LARGE_KEYS = {"quick": 120, "full": 600}
LARGE_TAIL_UPDATES = {"quick": 4, "full": 5}

#: Deployment profile: synthetic "weeks" of writes to a fixed key
#: population, checkpointing after each.
DEPLOYMENT_WEEKS = {"quick": 3, "full": 6}
DEPLOYMENT_KEYS = 40
DEPLOYMENT_EVENTS_PER_WEEK = {"quick": 600, "full": 1500}


def _profile(quick: bool) -> MachineProfile:
    return MachineProfile(
        name="bench-parallel",
        platform=PLATFORM_LINUX,
        days=6 if quick else 32,
        apps=APPS,
        sessions_per_day=6,
        actions_per_session=12,
        pref_edits_per_day=3.0,
        noise_keys=80 if quick else 150,
        noise_writes_per_day=400 if quick else 1300,
        reads_per_day=0,
        seed=SEED,
    )


def _key_sets(cluster_set) -> list[tuple[str, ...]]:
    return [tuple(cluster.sorted_keys()) for cluster in cluster_set]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _run_mode(executor, prefixes, base, tail, slice_size) -> dict:
    """One full warm-then-tail pass; returns timings and final clusters."""
    store = TTKV()
    pipeline = ShardedPipeline(store, shard_prefixes=prefixes, executor=executor)
    store.record_events(base)
    pipeline.update()  # warm: consume the 90% prefix
    seconds = 0.0
    busy = 0.0
    map_wall = 0.0
    updates = 0
    for start in range(0, len(tail), slice_size):
        store.record_events(tail[start:start + slice_size])
        elapsed, _ = _timed(pipeline.update)
        seconds += elapsed
        stats = pipeline.last_stats
        shard_busy = sum(stats.shard_timings.values())
        busy += shard_busy
        if stats.parallel_speedup > 0:
            map_wall += shard_busy / stats.parallel_speedup
        updates += 1
    result = {
        "seconds": seconds,
        "updates": updates,
        "parallel_speedup": busy / map_wall if map_wall else 1.0,
        "checkpoint_bytes": len(json.dumps(pipeline.to_state())),
        "key_sets": {
            shard_id: _key_sets(pipeline.cluster_set_for(shard_id))
            for shard_id in pipeline.shard_ids
        },
    }
    pipeline.close()
    return result


def _large_trace(quick: bool) -> tuple[tuple[str, ...], list[tuple], list[list[tuple]]]:
    """Per-app dense hot components plus per-update tail bursts.

    Each application's settings form one ~``LARGE_KEYS``-key connected
    component whose write groups sample random subsets of the key space —
    dense correlation structure, so agglomeration (not bookkeeping)
    dominates every repair.  The tail co-writes random key pairs: their
    many strong neighbours put the splice line near the component floor,
    forcing a near-full re-agglomeration per update — exactly the
    kernel-bound regime the profile exists to measure.
    """
    mode = "quick" if quick else "full"
    keys_per_app = LARGE_KEYS[mode]
    rng = random.Random(SEED)
    prefixes = tuple(f"app{chr(ord('a') + i)}/" for i in range(LARGE_APPS))
    names = {
        prefix: [f"{prefix}k{i:04d}" for i in range(keys_per_app)]
        for prefix in prefixes
    }
    width = max(3, keys_per_app // 13)
    base: list[tuple] = []
    t = 0.0
    group = 0
    for _ in range(keys_per_app * 2):
        for prefix in prefixes:
            t += 100.0
            for name in sorted(set(rng.sample(names[prefix], rng.randint(2, width)))):
                base.append((t, name, group))
            group += 1
    tails: list[list[tuple]] = []
    for update in range(LARGE_TAIL_UPDATES[mode]):
        burst: list[tuple] = []
        for prefix in prefixes:
            t += 100.0
            for name in sorted(rng.sample(names[prefix], 2)):
                burst.append((t, name, f"tail{update}"))
        tails.append(burst)
    return prefixes, base, tails


def _run_large_mode(executor, prefixes, base, tails, kernel) -> dict:
    """One warm-then-tail pass over the large-component trace."""
    store = TTKV()
    pipeline = ShardedPipeline(
        store,
        shard_prefixes=prefixes,
        catch_all=False,
        executor=executor,
        kernel=kernel,
    )
    store.record_events(base)
    pipeline.update()  # warm: build every hot component once
    seconds = 0.0
    busy = 0.0
    map_wall = 0.0
    recomputed = 0
    for tail in tails:
        store.record_events(tail)
        elapsed, _ = _timed(pipeline.update)
        seconds += elapsed
        stats = pipeline.last_stats
        recomputed += stats.merges_recomputed
        shard_busy = sum(stats.shard_timings.values())
        busy += shard_busy
        if stats.parallel_speedup > 0:
            map_wall += shard_busy / stats.parallel_speedup
    result = {
        "seconds": seconds,
        "parallel_speedup": busy / map_wall if map_wall else 1.0,
        "merges_recomputed": recomputed,
        "key_sets": {
            shard_id: _key_sets(pipeline.cluster_set_for(shard_id))
            for shard_id in pipeline.shard_ids
        },
    }
    pipeline.close()
    return result


def run_large_profile(quick: bool, workers: int) -> dict:
    """The kernel-bound counterpoint: serial vs thread vs process vs python."""
    prefixes, base, tails = _large_trace(quick)
    serial_exec = SerialExecutor()
    thread_exec = ThreadShardExecutor(min(workers, len(prefixes)))
    process_exec = ProcessShardExecutor(min(workers, len(prefixes)))
    try:
        serial = _run_large_mode(serial_exec, prefixes, base, tails, KERNEL_NUMPY)
        thread = _run_large_mode(thread_exec, prefixes, base, tails, KERNEL_NUMPY)
        process = _run_large_mode(
            process_exec, prefixes, base, tails, KERNEL_NUMPY
        )
        python = _run_large_mode(serial_exec, prefixes, base, tails, KERNEL_PYTHON)
    finally:
        thread_exec.close()
        process_exec.close()
    mode = "quick" if quick else "full"
    return {
        "large_apps": len(prefixes),
        "large_keys_per_app": LARGE_KEYS[mode],
        "large_events": len(base) + sum(len(tail) for tail in tails),
        "large_tail_updates": len(tails),
        "large_merges_recomputed": serial["merges_recomputed"],
        "large_serial_seconds": serial["seconds"],
        "large_thread_seconds": thread["seconds"],
        "large_process_seconds": process["seconds"],
        "large_python_seconds": python["seconds"],
        "large_thread_speedup": (
            serial["seconds"] / thread["seconds"]
            if thread["seconds"]
            else float("inf")
        ),
        "large_process_speedup": (
            serial["seconds"] / process["seconds"]
            if process["seconds"]
            else float("inf")
        ),
        "large_kernel_speedup": (
            python["seconds"] / serial["seconds"]
            if serial["seconds"]
            else float("inf")
        ),
        "large_thread_parallel_speedup": thread["parallel_speedup"],
        "large_process_parallel_speedup": process["parallel_speedup"],
        "large_executors_agree": (
            serial["key_sets"]
            == thread["key_sets"]
            == process["key_sets"]
            == python["key_sets"]
        ),
    }


def run_deployment_profile(quick: bool) -> dict:
    """Week-over-week checkpoint growth of one long-lived session.

    A fixed 40-key population keeps writing in small co-write bursts for
    several synthetic weeks; the session checkpoints after each.  With
    compaction the ``"groups"`` list never outgrows the provisional tail
    and the aggregate baseline is bounded by the live key/pair
    population, so the size plateaus — without it the checkpoint grows
    with every consumed group, i.e. linearly in weeks.  Deterministic
    (seeded, no timing), so ``checkpoint_bytes`` gates tightly in CI.
    """
    mode = "quick" if quick else "full"
    weeks = DEPLOYMENT_WEEKS[mode]
    per_week = DEPLOYMENT_EVENTS_PER_WEEK[mode]
    rng = random.Random(SEED)
    keys = [f"app/k{i:03d}" for i in range(DEPLOYMENT_KEYS)]
    store = TTKV()
    pipeline = ShardedPipeline(store, shard_prefixes=("app/",), catch_all=False)
    t = 0.0
    sizes: list[int] = []
    for week in range(weeks):
        for _ in range(per_week):
            # mostly tight co-write bursts, occasionally a long gap that
            # closes the open write group
            t += rng.choice((0.2, 0.3, 0.4, 120.0))
            store.record_write(rng.choice(keys), week, t)
        pipeline.update()
        sizes.append(len(json.dumps(pipeline.to_state())))
    pipeline.close()
    return {
        "deployment_weeks": weeks,
        "deployment_events_per_week": per_week,
        "deployment_checkpoint_bytes": sizes,
        # plateau: once the key/pair population saturates (week 2), the
        # checkpoint must stop growing
        "deployment_checkpoint_flat": sizes[-1] <= sizes[1] * 1.05,
        "checkpoint_bytes": sizes[-1],
    }


def run_benchmark(quick: bool = False, workers: int = DEFAULT_WORKERS) -> dict:
    trace = generate_trace(_profile(quick))
    prefixes = tuple(trace.apps[name].key_prefix for name in APPS)
    events = trace.ttkv.write_events()
    split = len(events) - max(1, int(len(events) * TAIL_FRACTION))
    base, tail = events[:split], events[split:]
    slice_size = max(1, -(-len(tail) // TAIL_SLICES))

    serial_exec = SerialExecutor()
    thread_exec = ThreadShardExecutor(workers)
    process_exec = ProcessShardExecutor(workers)
    try:
        serial = _run_mode(serial_exec, prefixes, base, tail, slice_size)
        thread = _run_mode(thread_exec, prefixes, base, tail, slice_size)
        process = _run_mode(process_exec, prefixes, base, tail, slice_size)
    finally:
        thread_exec.close()
        process_exec.close()

    executors_agree = (
        serial["key_sets"] == thread["key_sets"] == process["key_sets"]
    )

    # -- exact equality with the batch reference, per shard ------------------
    full_store = TTKV()
    full_store.record_events(events)
    matches_batch = True
    for prefix in prefixes:
        if serial["key_sets"][prefix] != _key_sets(
            cluster_settings(full_store, key_filter=prefix)
        ):
            matches_batch = False
    leftover = TTKV.from_events(
        [e for e in events if not any(e[1].startswith(p) for p in prefixes)]
    )
    if serial["key_sets"][CATCH_ALL] != _key_sets(cluster_settings(leftover)):
        matches_batch = False

    large = run_large_profile(quick, workers)
    deployment = run_deployment_profile(quick)

    return {
        "events": len(events),
        "tail_events": len(tail),
        "apps": len(APPS),
        "app_prefixes": list(prefixes),
        "seed": SEED,
        "quick": quick,
        "cpu_count": os.cpu_count() or 1,
        "gil": getattr(sys, "_is_gil_enabled", lambda: True)(),
        "workers": workers,
        **large,
        **deployment,
        "multiapp_checkpoint_bytes": serial["checkpoint_bytes"],
        "tail_updates": serial["updates"],
        "serial_seconds": serial["seconds"],
        "thread_seconds": thread["seconds"],
        "process_seconds": process["seconds"],
        "thread_speedup": (
            serial["seconds"] / thread["seconds"]
            if thread["seconds"]
            else float("inf")
        ),
        "process_speedup": (
            serial["seconds"] / process["seconds"]
            if process["seconds"]
            else float("inf")
        ),
        "serial_parallel_speedup": serial["parallel_speedup"],
        "thread_parallel_speedup": thread["parallel_speedup"],
        "process_parallel_speedup": process["parallel_speedup"],
        "executors_agree": executors_agree,
        "matches_batch": matches_batch,
    }


def render(record: dict) -> str:
    return (
        "serial vs thread vs process shard execution "
        f"({record['events']} events, {record['apps']} apps, "
        f"{record['tail_events']} appended over {record['tail_updates']} "
        f"updates; {record['workers']} workers, "
        f"{record['cpu_count']} cpu(s)):\n"
        f"  serial update total  : {record['serial_seconds'] * 1000:8.2f} ms\n"
        f"  thread update total  : {record['thread_seconds'] * 1000:8.2f} ms "
        f"({record['thread_speedup']:.2f}x wall, "
        f"{record['thread_parallel_speedup']:.1f}x overlap)\n"
        f"  process update total : {record['process_seconds'] * 1000:8.2f} ms "
        f"({record['process_speedup']:.2f}x wall, "
        f"{record['process_parallel_speedup']:.1f}x overlap)\n"
        f"  executors agree      : {record['executors_agree']}; "
        f"equal to batch per prefix: {record['matches_batch']}\n"
        "large-component profile "
        f"({record['large_apps']} apps x {record['large_keys_per_app']} keys, "
        f"{record['large_tail_updates']} updates, "
        f"{record['large_merges_recomputed']} merges recomputed):\n"
        f"  serial (numpy kernel): {record['large_serial_seconds'] * 1000:8.2f} ms\n"
        f"  thread (numpy kernel): {record['large_thread_seconds'] * 1000:8.2f} ms "
        f"({record['large_thread_speedup']:.2f}x wall, "
        f"{record['large_thread_parallel_speedup']:.1f}x overlap)\n"
        f"  process (numpy kernel): {record['large_process_seconds'] * 1000:7.2f} ms "
        f"({record['large_process_speedup']:.2f}x wall, "
        f"{record['large_process_parallel_speedup']:.1f}x overlap)\n"
        f"  serial (python ref)  : {record['large_python_seconds'] * 1000:8.2f} ms "
        f"(kernel {record['large_kernel_speedup']:.1f}x)\n"
        f"  cluster sets agree   : {record['large_executors_agree']}\n"
        "deployment profile "
        f"({record['deployment_weeks']} weeks x "
        f"{record['deployment_events_per_week']} events):\n"
        "  checkpoint bytes/week: "
        + " ".join(str(b) for b in record["deployment_checkpoint_bytes"])
        + "\n"
        f"  flat after warm-up   : {record['deployment_checkpoint_flat']}"
    )


def _gate(record: dict, quick: bool) -> list[str]:
    """Human-readable failures; empty when the record passes its gates."""
    failures = []
    if not record["executors_agree"]:
        failures.append("executors disagree on the final cluster sets")
    if not record["matches_batch"]:
        failures.append("clusters diverged from the batch reference")
    if not record["large_executors_agree"]:
        failures.append(
            "large-component profile: serial/thread/process/python cluster "
            "sets differ"
        )
    if not record["deployment_checkpoint_flat"]:
        sizes = record["deployment_checkpoint_bytes"]
        failures.append(
            "deployment profile: checkpoint size did not plateau "
            f"({' -> '.join(str(b) for b in sizes)} bytes)"
        )
    if quick:
        return failures
    if record["events"] < 40_000:
        failures.append("trace below the 40k-event acceptance floor")
    if record["large_kernel_speedup"] < 3.0:
        failures.append(
            "large-component profile is not kernel-bound: kernel speedup "
            f"{record['large_kernel_speedup']:.2f}x (< 3x)"
        )
    # The >=2x thread gates over the *multi-app* profile are only
    # attainable where threads can run the pure-Python shard updates
    # concurrently: a free-threaded (no-GIL) interpreter on a multi-core
    # host.  Everywhere else the numbers are recorded but physically
    # capped near 1.0 — gating there would institutionalise a permanently
    # red check.
    gil = getattr(sys, "_is_gil_enabled", lambda: True)()
    if not gil and record["cpu_count"] >= 2:
        if record["thread_parallel_speedup"] < 2.0:
            failures.append(
                "thread executor overlapped less than 2x "
                f"({record['thread_parallel_speedup']:.2f}x)"
            )
        if record["thread_speedup"] < 2.0:
            failures.append(
                "free-threaded build on a multi-core host but thread wall "
                f"speedup is {record['thread_speedup']:.2f}x (< 2x)"
            )
    # The large-component gate arms on stock (GIL) builds too: the numpy
    # kernel releases the GIL inside its reductions, so on any >=2-core
    # host the thread executor must convert that into real wall-clock
    # speedup.  A single-core host physically cannot overlap — recorded,
    # not gated.
    if record["cpu_count"] >= 2:
        if record["large_thread_speedup"] < 1.5:
            failures.append(
                "large-component profile: thread wall speedup "
                f"{record['large_thread_speedup']:.2f}x (< 1.5x) on a "
                f"{record['cpu_count']}-cpu host"
            )
        # With worker-affinity slice hand-offs, process mode must at
        # least break even against serial where true parallelism exists.
        # A single-core host pays the process plumbing with nothing to
        # overlap — recorded, not gated.
        if record["large_process_speedup"] < 1.0:
            failures.append(
                "large-component profile: process wall speedup "
                f"{record['large_process_speedup']:.2f}x (< 1x) on a "
                f"{record['cpu_count']}-cpu host — the affinity fast "
                "path is not paying"
            )
    return failures


def test_parallel_executors(benchmark, report):
    record = benchmark.pedantic(
        lambda: run_benchmark(quick=True), rounds=1, iterations=1
    )
    report("bench_parallel", render(record))
    (Path(__file__).parent / "out" / "BENCH_parallel.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    assert record["executors_agree"]
    assert record["matches_batch"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small trace; skip the scale and speedup gates",
    )
    parser.add_argument(
        "--workers", type=int, default=DEFAULT_WORKERS,
        help="pool width for the thread/process strategies",
    )
    parser.add_argument("--out", type=Path, default=None, help="write the JSON record here")
    args = parser.parse_args(argv)
    record = run_benchmark(quick=args.quick, workers=args.workers)
    print(render(record))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    failures = _gate(record, quick=args.quick)
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Serial vs thread vs process shard execution on a multi-app trace.

The scenario extends ``bench_sharded.py``'s busy five-application machine:
clustering runs continuously while every application keeps writing, so
each ``update()`` has several dirty shards — exactly the shape the
pluggable execution layer (:mod:`repro.core.executors`) targets.  All
three strategies consume the same generated trace (seeded, recorded in
the output JSON): warm a :class:`ShardedPipeline` on 90% of the stream,
then append the interleaved tail in slices, timing every ``update()``.

Two different numbers fall out, and they answer different questions:

- ``thread_speedup`` / ``process_speedup`` — wall-clock ratio against the
  serial executor.  On a stock (GIL) CPython build the clustering hot
  path is pure Python, so the thread executor cannot beat serial on wall
  clock no matter how many cores exist — a shard update shorter than the
  interpreter's ~5 ms switch interval runs start-to-finish inside one GIL
  slice, so thread-pool "concurrency" degenerates to serial execution
  plus dispatch overhead (expect ~0.8–1.0x here, honestly reported).
  The process executor has true parallelism but pays an O(session state)
  checkpoint round-trip per shard per update, which dominates at this
  trace size.  The benchmark records ``cpu_count`` (and the gates check
  the interpreter) so CI compares like with like.
- ``thread_parallel_speedup`` / ``process_parallel_speedup`` — the
  overlap factor from ``UpdateStats.parallel_speedup``: total per-shard
  busy seconds over the wall time of the shard pass.  Under the GIL this
  too sits near 1.0 for sub-slice tasks (threads cannot even *start*
  timing until they first hold the GIL); on a free-threaded build it
  approaches the worker count and the ≥2x gate below arms itself.

Correctness is asserted unconditionally: all three executors must
produce identical final cluster sets, equal to the batch
``cluster_settings`` reference per application prefix (catch-all
included).

Run as a script for CI/quick use::

    python benchmarks/bench_parallel.py --quick --out benchmarks/out/BENCH_parallel.json

or through the benchmark harness (``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.executors import (
    ProcessShardExecutor,
    SerialExecutor,
    ThreadShardExecutor,
)
from repro.core.pipeline import cluster_settings
from repro.core.sharded import ShardedPipeline
from repro.ttkv.sharding import CATCH_ALL
from repro.ttkv.store import TTKV
from repro.workload.machines import MachineProfile, PLATFORM_LINUX
from repro.workload.tracegen import generate_trace

#: The applications sharing the benchmark machine (all Linux-flavoured).
APPS = (
    "Chrome Browser",
    "GNOME Edit",
    "Eye of GNOME",
    "Acrobat Reader",
    "Evolution Mail",
)

#: Trace-generation seed; recorded in the JSON so the CI regression gate
#: only ever compares runs over the identical trace.
SEED = 2024

#: Fraction of the stream appended (interleaved across all apps) after
#: the pipelines are warm.
TAIL_FRACTION = 0.10

#: How many update() calls the tail is spread over.
TAIL_SLICES = 20

#: Pool width for the thread/process strategies (unless --workers).
DEFAULT_WORKERS = 4


def _profile(quick: bool) -> MachineProfile:
    return MachineProfile(
        name="bench-parallel",
        platform=PLATFORM_LINUX,
        days=6 if quick else 32,
        apps=APPS,
        sessions_per_day=6,
        actions_per_session=12,
        pref_edits_per_day=3.0,
        noise_keys=80 if quick else 150,
        noise_writes_per_day=400 if quick else 1300,
        reads_per_day=0,
        seed=SEED,
    )


def _key_sets(cluster_set) -> list[tuple[str, ...]]:
    return [tuple(cluster.sorted_keys()) for cluster in cluster_set]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _run_mode(executor, prefixes, base, tail, slice_size) -> dict:
    """One full warm-then-tail pass; returns timings and final clusters."""
    store = TTKV()
    pipeline = ShardedPipeline(store, shard_prefixes=prefixes, executor=executor)
    store.record_events(base)
    pipeline.update()  # warm: consume the 90% prefix
    seconds = 0.0
    busy = 0.0
    map_wall = 0.0
    updates = 0
    for start in range(0, len(tail), slice_size):
        store.record_events(tail[start:start + slice_size])
        elapsed, _ = _timed(pipeline.update)
        seconds += elapsed
        stats = pipeline.last_stats
        shard_busy = sum(stats.shard_timings.values())
        busy += shard_busy
        if stats.parallel_speedup > 0:
            map_wall += shard_busy / stats.parallel_speedup
        updates += 1
    result = {
        "seconds": seconds,
        "updates": updates,
        "parallel_speedup": busy / map_wall if map_wall else 1.0,
        "key_sets": {
            shard_id: _key_sets(pipeline.cluster_set_for(shard_id))
            for shard_id in pipeline.shard_ids
        },
    }
    pipeline.close()
    return result


def run_benchmark(quick: bool = False, workers: int = DEFAULT_WORKERS) -> dict:
    trace = generate_trace(_profile(quick))
    prefixes = tuple(trace.apps[name].key_prefix for name in APPS)
    events = trace.ttkv.write_events()
    split = len(events) - max(1, int(len(events) * TAIL_FRACTION))
    base, tail = events[:split], events[split:]
    slice_size = max(1, -(-len(tail) // TAIL_SLICES))

    serial_exec = SerialExecutor()
    thread_exec = ThreadShardExecutor(workers)
    process_exec = ProcessShardExecutor(workers)
    try:
        serial = _run_mode(serial_exec, prefixes, base, tail, slice_size)
        thread = _run_mode(thread_exec, prefixes, base, tail, slice_size)
        process = _run_mode(process_exec, prefixes, base, tail, slice_size)
    finally:
        thread_exec.close()
        process_exec.close()

    executors_agree = (
        serial["key_sets"] == thread["key_sets"] == process["key_sets"]
    )

    # -- exact equality with the batch reference, per shard ------------------
    full_store = TTKV()
    full_store.record_events(events)
    matches_batch = True
    for prefix in prefixes:
        if serial["key_sets"][prefix] != _key_sets(
            cluster_settings(full_store, key_filter=prefix)
        ):
            matches_batch = False
    leftover = TTKV.from_events(
        [e for e in events if not any(e[1].startswith(p) for p in prefixes)]
    )
    if serial["key_sets"][CATCH_ALL] != _key_sets(cluster_settings(leftover)):
        matches_batch = False

    return {
        "events": len(events),
        "tail_events": len(tail),
        "apps": len(APPS),
        "app_prefixes": list(prefixes),
        "seed": SEED,
        "quick": quick,
        "cpu_count": os.cpu_count() or 1,
        "workers": workers,
        "tail_updates": serial["updates"],
        "serial_seconds": serial["seconds"],
        "thread_seconds": thread["seconds"],
        "process_seconds": process["seconds"],
        "thread_speedup": (
            serial["seconds"] / thread["seconds"]
            if thread["seconds"]
            else float("inf")
        ),
        "process_speedup": (
            serial["seconds"] / process["seconds"]
            if process["seconds"]
            else float("inf")
        ),
        "serial_parallel_speedup": serial["parallel_speedup"],
        "thread_parallel_speedup": thread["parallel_speedup"],
        "process_parallel_speedup": process["parallel_speedup"],
        "executors_agree": executors_agree,
        "matches_batch": matches_batch,
    }


def render(record: dict) -> str:
    return (
        "serial vs thread vs process shard execution "
        f"({record['events']} events, {record['apps']} apps, "
        f"{record['tail_events']} appended over {record['tail_updates']} "
        f"updates; {record['workers']} workers, "
        f"{record['cpu_count']} cpu(s)):\n"
        f"  serial update total  : {record['serial_seconds'] * 1000:8.2f} ms\n"
        f"  thread update total  : {record['thread_seconds'] * 1000:8.2f} ms "
        f"({record['thread_speedup']:.2f}x wall, "
        f"{record['thread_parallel_speedup']:.1f}x overlap)\n"
        f"  process update total : {record['process_seconds'] * 1000:8.2f} ms "
        f"({record['process_speedup']:.2f}x wall, "
        f"{record['process_parallel_speedup']:.1f}x overlap)\n"
        f"  executors agree      : {record['executors_agree']}; "
        f"equal to batch per prefix: {record['matches_batch']}"
    )


def _gate(record: dict, quick: bool) -> list[str]:
    """Human-readable failures; empty when the record passes its gates."""
    failures = []
    if not record["executors_agree"]:
        failures.append("executors disagree on the final cluster sets")
    if not record["matches_batch"]:
        failures.append("clusters diverged from the batch reference")
    if quick:
        return failures
    if record["events"] < 40_000:
        failures.append("trace below the 40k-event acceptance floor")
    # The >=2x thread gates are only attainable where threads can actually
    # run the pure-Python shard updates concurrently: a free-threaded
    # (no-GIL) interpreter on a multi-core host.  Everywhere else the
    # numbers are recorded but physically capped near 1.0 — gating there
    # would institutionalise a permanently red check.
    gil = getattr(sys, "_is_gil_enabled", lambda: True)()
    if not gil and record["cpu_count"] >= 2:
        if record["thread_parallel_speedup"] < 2.0:
            failures.append(
                "thread executor overlapped less than 2x "
                f"({record['thread_parallel_speedup']:.2f}x)"
            )
        if record["thread_speedup"] < 2.0:
            failures.append(
                "free-threaded build on a multi-core host but thread wall "
                f"speedup is {record['thread_speedup']:.2f}x (< 2x)"
            )
    return failures


def test_parallel_executors(benchmark, report):
    record = benchmark.pedantic(
        lambda: run_benchmark(quick=True), rounds=1, iterations=1
    )
    report("bench_parallel", render(record))
    (Path(__file__).parent / "out" / "BENCH_parallel.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    assert record["executors_agree"]
    assert record["matches_batch"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small trace; skip the scale and speedup gates",
    )
    parser.add_argument(
        "--workers", type=int, default=DEFAULT_WORKERS,
        help="pool width for the thread/process strategies",
    )
    parser.add_argument("--out", type=Path, default=None, help="write the JSON record here")
    args = parser.parse_args(argv)
    record = run_benchmark(quick=args.quick, workers=args.workers)
    print(render(record))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    failures = _gate(record, quick=args.quick)
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Table III: the sixteen real-world configuration errors (the catalogue
itself plus a validation that every case is live against its application)."""

from repro.apps.catalog import create_app
from repro.errors.cases import ERROR_CASES
from repro.experiments.table3 import render_table3
from repro.repair.replay import replay_trial
from repro.repair.trial import Trial
from repro.ttkv.store import DELETED


def _run_all_cases() -> int:
    """Drive every case's injection + trial on a fresh app; count symptoms."""
    symptomatic = 0
    for case in ERROR_CASES:
        app = create_app(case.app_name)
        for local, value in {**case.good_values, **case.injection}.items():
            store_key = app.store_key(local)
            if value is DELETED:
                app.store._data.pop(store_key, None)
            else:
                app.store._data[store_key] = value
        shot = replay_trial(
            app, Trial.record(case.app_name, list(case.trial_actions))
        )
        symptomatic += case.symptomatic(shot)
    return symptomatic


def test_table3_error_catalogue(benchmark, report):
    symptomatic = benchmark.pedantic(_run_all_cases, rounds=1, iterations=1)
    report("table3", render_table3())
    assert symptomatic == 16  # every Table III error exhibits its symptom

"""Table IV: recovery performance on all sixteen errors (DFS, 14-day
injection), Ocasta vs the Ocasta-NoClust baseline."""

from repro.experiments.recovery import render_table4, run_table4


def test_table4_recovery(benchmark, report):
    results = benchmark.pedantic(
        run_table4, kwargs={"exhaustive": True}, rounds=1, iterations=1
    )
    report("table4", render_table4(results))

    # Headline result: Ocasta fixes all 16; NoClust fails exactly the
    # five multi-key errors (paper: 11/16 fixed).
    assert all(r.ocasta.fixed for r in results)
    noclust_failed = {r.case.case_id for r in results if not r.noclust.fixed}
    assert noclust_failed == {2, 4, 6, 7, 9}

    for result in results:
        outcome = result.ocasta.outcome
        # The user examines a modest screenshot gallery (paper avg 3,
        # worst 11; allow head-room for seed variation).
        assert outcome.unique_screenshots <= 20
        # Time-to-fix never exceeds the exhaustive search time.
        assert outcome.time_to_fix <= outcome.total_time
        # Finding the fix early is the point of the sort (paper: 78%
        # faster on average than searching everything).
    speedups = [
        1 - r.ocasta.outcome.time_to_fix / r.ocasta.outcome.total_time
        for r in results
        if r.ocasta.outcome.total_time > 0
    ]
    assert sum(speedups) / len(speedups) > 0.25

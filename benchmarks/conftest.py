"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper, prints the
rendered rows/series, and archives them under ``benchmarks/out/`` so
EXPERIMENTS.md can be refreshed from a single run:

    pytest benchmarks/ --benchmark-only

Experiment benches run once (``pedantic`` with one round): they are
end-to-end reproductions, not micro-benchmarks, and their interesting
output is the table itself plus a single wall-clock figure.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def report(out_dir, capsys):
    """Print a rendered experiment report and archive it."""

    def _report(name: str, text: str) -> None:
        (out_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _report

"""Table II: clustering accuracy across the eleven applications."""

from repro.core.accuracy import mean_accuracy, overall_accuracy
from repro.experiments.table2 import render_table2, run_table2


def test_table2_clustering_accuracy(benchmark, report):
    reports = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    report("table2", render_table2(reports))

    by_app = {r.app_name: r for r in reports}

    # Key counts are exact (Table II's #Keys column is the schema size).
    assert sum(r.total_keys for r in reports) == 1871

    overall = overall_accuracy(reports)
    mean = mean_accuracy(reports)
    # Paper: 88.6% overall, 72.3% mean per-app.  Shape bands:
    assert 0.70 <= overall <= 0.97
    assert 0.55 <= mean <= 0.90

    # The weak/strong application split must reproduce.
    assert by_app["Evolution Mail"].accuracy < 0.65
    assert by_app["GNOME Edit"].accuracy == 0.0
    assert by_app["MS Paint"].accuracy < 0.75
    assert by_app["Chrome Browser"].accuracy >= 0.9
    assert by_app["Acrobat Reader"].accuracy >= 0.85
    assert by_app["MS Word"].accuracy >= 0.85
    # Eye of GNOME has no multi-setting clusters (N/A row).
    assert by_app["Eye of GNOME"].accuracy is None

"""Spliced vs wholesale dendrogram repair on a hot-component trace.

The scenario is the worst case the ROADMAP called out after sharding
landed: one application whose settings form a single large connected
component (a "hot" component), receiving a steady trickle of writes that
each touch only a couple of keys.  The sharded engine already confines
every update to that dirty component — but before spliced repair it still
re-agglomerated the *whole* component per update, O(n²) in its size, so
the hot component dominated incremental update cost.

Two identical :class:`~repro.core.incremental.IncrementalPipeline`
sessions consume the same warmed store, then the same appended tail in
slices, timing each ``update()``:

- **rebuild**: ``repair_mode="rebuild"`` — every dirty component is
  re-agglomerated from singletons (the pre-splice behaviour);
- **splice**: ``repair_mode="splice"`` — cached dendrogram merges below
  the first affected linkage distance are kept verbatim and only the
  surviving super-clusters re-agglomerate
  (:mod:`repro.core.dendro_repair`).

Clusters are asserted bit-identical between the two modes after every
update, and against the batch ``cluster_settings`` reference at the end
— the speedup must not come at the price of a different answer.

Run as a script for CI/quick use::

    python benchmarks/bench_splice.py --quick --out benchmarks/out/BENCH_splice.json

or through the benchmark harness (``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.incremental import IncrementalPipeline
from repro.core.pipeline import cluster_settings
from repro.ttkv.store import TTKV

#: Trace-generation seed; recorded in the JSON so the CI regression gate
#: only ever compares runs over the identical trace.
SEED = 20260729

#: How many update() calls the appended tail is spread over.
TAIL_UPDATES = 40


def _trace(quick: bool) -> tuple[list[tuple], list[list[tuple]]]:
    """A hot-component stream: warm prefix plus per-update tail bursts.

    The component mirrors what real config stores look like: tight
    *blocks* of settings written together (strong correlation, low
    linkage distance) plus a handful of high-churn keys — counters,
    timestamps, MRU lists — that co-occur with everything occasionally
    but correlate with nothing (weak correlation, high distance).  The
    churny keys stitch the blocks into one large component, and the tail
    writes land on them: exactly the updates whose splice line sits above
    the block merges, and exactly the kind of key that fires constantly
    in practice.
    """
    blocks = 40 if quick else 100
    churn = 6 if quick else 8
    rounds = 24
    rng = random.Random(SEED)
    block_keys = [
        [f"app/block{b:03d}/s{i}" for i in range(4)] for b in range(blocks)
    ]
    churn_keys = [f"app/churn{c}" for c in range(churn)]

    events: list[tuple] = []
    t = 0.0
    group = 0

    def burst(names: list[str]) -> None:
        nonlocal t, group
        t += 100.0
        for name in sorted(set(names)):
            events.append((t, name, group))
        group += 1

    for r in range(rounds):
        for b in range(blocks):
            burst(block_keys[b])
            if (b + r) % 5 == 0:
                # a churny key fires alongside one block member: the weak
                # bridge that keeps the component connected
                burst([
                    churn_keys[(b + r) % churn],
                    rng.choice(block_keys[b]),
                ])
        for name in churn_keys:
            burst([name])  # solo churn writes dilute their correlations

    tails: list[list[tuple]] = []
    for u in range(TAIL_UPDATES):
        t += 100.0
        pair = rng.sample(churn_keys, 2)
        tails.append([(t, name, f"tail{u}") for name in sorted(pair)])
    return events, tails


def _key_sets(cluster_set) -> list[tuple[str, ...]]:
    return [tuple(cluster.sorted_keys()) for cluster in cluster_set]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def run_benchmark(quick: bool = False) -> dict:
    warm, tails = _trace(quick)

    stores = {mode: TTKV() for mode in ("rebuild", "splice")}
    pipelines = {
        mode: IncrementalPipeline(store, repair_mode=mode)
        for mode, store in stores.items()
    }
    for mode, store in stores.items():
        store.record_events(warm)
        pipelines[mode].update()  # warm both sessions

    seconds = {"rebuild": 0.0, "splice": 0.0}
    merges_reused = merges_recomputed = 0
    equal = True
    for tail in tails:
        sets = {}
        for mode, store in stores.items():
            store.record_events(tail)
            elapsed, clusters = _timed(pipelines[mode].update)
            seconds[mode] += elapsed
            sets[mode] = _key_sets(clusters)
        stats = pipelines["splice"].last_stats
        merges_reused += stats.merges_reused
        merges_recomputed += stats.merges_recomputed
        if sets["splice"] != sets["rebuild"]:
            equal = False

    batch = cluster_settings(stores["splice"])
    matches_batch = _key_sets(pipelines["splice"].cluster_set) == _key_sets(batch)

    component_keys = max(
        (len(c) for c in pipelines["splice"].matrix.connected_components()),
        default=0,
    )
    events = len(warm) + sum(len(tail) for tail in tails)
    record = {
        "events": events,
        "tail_events": sum(len(tail) for tail in tails),
        "tail_updates": len(tails),
        "hot_component_keys": component_keys,
        "seed": SEED,
        "quick": quick,
        "rebuild_seconds": seconds["rebuild"],
        "splice_seconds": seconds["splice"],
        "splice_speedup": (
            seconds["rebuild"] / seconds["splice"]
            if seconds["splice"]
            else float("inf")
        ),
        "merges_reused": merges_reused,
        "merges_recomputed": merges_recomputed,
        "merge_reuse_fraction": (
            merges_reused / (merges_reused + merges_recomputed)
            if merges_reused + merges_recomputed
            else 0.0
        ),
        "clusters": len(pipelines["splice"].cluster_set),
        "splice_equals_rebuild": equal,
        "splice_equals_batch": matches_batch,
    }
    for pipeline in pipelines.values():
        pipeline.close()
    return record


def render(record: dict) -> str:
    return (
        "spliced vs wholesale dendrogram repair "
        f"({record['events']} events, "
        f"{record['hot_component_keys']}-key hot component, "
        f"{record['tail_events']} appended over {record['tail_updates']} updates):\n"
        f"  rebuild update total : {record['rebuild_seconds'] * 1000:8.2f} ms\n"
        f"  splice update total  : {record['splice_seconds'] * 1000:8.2f} ms\n"
        f"  speedup              : {record['splice_speedup']:8.1f}x\n"
        f"  merges               : {record['merges_reused']} spliced, "
        f"{record['merges_recomputed']} recomputed "
        f"({record['merge_reuse_fraction']:.0%} reused)\n"
        f"  clusters             : {record['clusters']}; "
        f"splice == rebuild: {record['splice_equals_rebuild']}; "
        f"== batch: {record['splice_equals_batch']}"
    )


def test_splice_speedup(benchmark, report):
    record = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    report("bench_splice", render(record))
    (Path(__file__).parent / "out" / "BENCH_splice.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    assert record["splice_equals_rebuild"]
    assert record["splice_equals_batch"]
    assert record["splice_speedup"] >= 2.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small trace, no speedup gate"
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write the JSON record here"
    )
    args = parser.parse_args(argv)
    record = run_benchmark(quick=args.quick)
    print(render(record))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    if not record["splice_equals_rebuild"]:
        print("ERROR: spliced clusters diverged from wholesale", file=sys.stderr)
        return 1
    if not record["splice_equals_batch"]:
        print("ERROR: spliced clusters diverged from batch", file=sys.stderr)
        return 1
    if not args.quick and record["splice_speedup"] < 2.0:
        print(
            "ERROR: splice speedup below the 2x acceptance floor", file=sys.stderr
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
